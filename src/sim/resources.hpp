// Fluid-flow shared-bandwidth resource.
//
// Models a capacity-C pipe (PCI bus, NIC link, NFS server, disk) shared
// by concurrent transfers under processor sharing: k active flows each
// progress at C/k (weighted by flow weight). Every arrival/departure
// re-linearises the remaining work, which is the classic fluid
// approximation — exact for equal-share fair queueing at the timescales
// the paper's experiments observe.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <list>
#include <string>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/units.hpp"

namespace storm::sim {

class SharedBandwidth {
 public:
  SharedBandwidth(Simulator& sim, Bandwidth capacity, std::string name = {})
      : sim_(sim), capacity_(capacity), name_(std::move(name)) {}
  SharedBandwidth(const SharedBandwidth&) = delete;
  SharedBandwidth& operator=(const SharedBandwidth&) = delete;

  Bandwidth capacity() const { return capacity_; }
  std::size_t active_flows() const { return flows_.size(); }

  /// Total weight of flows currently in the pipe.
  double active_weight() const { return total_weight_; }

  /// Transfer `bytes` through the pipe; completes when the flow's
  /// share of capacity has moved all bytes. `weight` scales the share
  /// (e.g. a DMA engine with two queued descriptors).
  Task<> transfer(Bytes bytes, double weight = 1.0) {
    if (bytes <= 0) co_return;
    assert(weight > 0);
    advance_all();
    auto it = flows_.emplace(flows_.end(), static_cast<double>(bytes), weight, sim_);
    total_weight_ += weight;
    reschedule();
    co_await it->done.wait();
    // Flow removed by the completion handler.
  }

  /// Open-ended background load: occupies `weight` share of the pipe
  /// until the returned handle is closed. Used to model the paper's
  /// network-loaded experiments without simulating every packet.
  class LoadHandle {
   public:
    LoadHandle() = default;
    ~LoadHandle() { close(); }
    LoadHandle(LoadHandle&& o) noexcept { *this = std::move(o); }
    LoadHandle& operator=(LoadHandle&& o) noexcept {
      close();
      res_ = std::exchange(o.res_, nullptr);
      weight_ = o.weight_;
      return *this;
    }
    void close() {
      if (res_) {
        res_->remove_background(weight_);
        res_ = nullptr;
      }
    }

   private:
    friend class SharedBandwidth;
    LoadHandle(SharedBandwidth* r, double w) : res_(r), weight_(w) {}
    SharedBandwidth* res_ = nullptr;
    double weight_ = 0;
  };

  LoadHandle add_background_load(double weight) {
    advance_all();
    total_weight_ += weight;
    background_weight_ += weight;
    reschedule();
    return LoadHandle{this, weight};
  }

  /// Instantaneous per-unit-weight rate of the flows already in the pipe.
  Bandwidth current_share() const {
    if (total_weight_ <= 0) return capacity_;
    return capacity_ / total_weight_;
  }

  /// Rate a prospective new flow of weight `extra` would receive —
  /// what sampled-rate transfer models should use before joining.
  Bandwidth share_with(double extra = 1.0) const {
    return capacity_ / (total_weight_ + extra);
  }

 private:
  struct Flow {
    Flow(double bytes, double w, Simulator& sim)
        : remaining_bytes(bytes), weight(w), done(sim) {}
    double remaining_bytes;
    double weight;
    Trigger done;
  };

  friend class LoadHandle;

  void remove_background(double weight) {
    advance_all();
    total_weight_ -= weight;
    background_weight_ -= weight;
    reschedule();
  }

  // Credit progress to every active flow for the elapsed interval.
  void advance_all() {
    const SimTime now = sim_.now();
    if (now > last_update_ && total_weight_ > 0 && !flows_.empty()) {
      const double dt = (now - last_update_).to_seconds();
      const double per_weight = capacity_.to_bytes_per_s() / total_weight_ * dt;
      for (auto& f : flows_) {
        f.remaining_bytes -= per_weight * f.weight;
        if (f.remaining_bytes < 0) f.remaining_bytes = 0;
      }
    }
    last_update_ = now;
  }

  // Recompute the next completion event.
  void reschedule() {
    if (next_event_ != kInvalidEvent) {
      sim_.cancel(next_event_);
      next_event_ = kInvalidEvent;
    }
    if (flows_.empty()) return;
    // Earliest finisher: min remaining/(share*weight). Round the
    // completion up to a whole nanosecond (and at least 1 ns) so the
    // event always advances simulated time; complete_finished()
    // forgives the sub-nanosecond residue this leaves behind.
    double best = 1e300;
    for (const auto& f : flows_) {
      const double rate =
          capacity_.to_bytes_per_s() / total_weight_ * f.weight;
      const double t = f.remaining_bytes / rate;
      if (t < best) best = t;
    }
    const auto ns = static_cast<std::int64_t>(std::ceil(best * 1e9));
    next_event_ = sim_.schedule_after(SimTime::ns(std::max<std::int64_t>(ns, 1)),
                                      [this] {
                                        next_event_ = kInvalidEvent;
                                        complete_finished();
                                      });
  }

  void complete_finished() {
    advance_all();
    for (auto it = flows_.begin(); it != flows_.end();) {
      const double rate =
          capacity_.to_bytes_per_s() / total_weight_ * it->weight;
      // Done if drained, or if the remainder is a rounding residue
      // that would finish within the 1 ns event resolution.
      if (it->remaining_bytes <= 1.0 || it->remaining_bytes <= rate * 1e-9) {
        it->done.fire();
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    // Recompute from scratch to keep floating-point bookkeeping exact.
    total_weight_ = background_weight_;
    for (const auto& f : flows_) total_weight_ += f.weight;
    reschedule();
  }

  Simulator& sim_;
  Bandwidth capacity_;
  std::string name_;
  std::list<Flow> flows_;
  double total_weight_ = 0;
  double background_weight_ = 0;
  SimTime last_update_ = SimTime::zero();
  EventId next_event_ = kInvalidEvent;
};

}  // namespace storm::sim
