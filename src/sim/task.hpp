// C++20 coroutine task type used for all simulated processes.
//
// A `Task<T>` is a lazily-started coroutine: nothing runs until it is
// either `co_await`ed by another task or handed to
// `Simulator::spawn()`. Awaiting uses symmetric transfer, so deeply
// nested protocol code does not grow the real stack.
//
// Lifetime rules (enforced by the types, per Core Guidelines R.1):
//  * An awaited Task is owned by the temporary in the co_await
//    expression; the frame is destroyed when that expression ends.
//  * A spawned (detached) Task destroys its own frame from the final
//    awaiter. An exception escaping a detached task calls
//    `detached_task_terminate()` (defaults to std::terminate) because
//    there is no awaiter to deliver it to.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace storm::sim {

/// Called when an exception escapes a detached (spawned) task.
/// Prints a diagnostic and terminates; kept out-of-line for testability.
[[noreturn]] void detached_task_terminate(std::exception_ptr error);

template <typename T = void>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};
  bool detached = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.detached) {
        std::exception_ptr err = p.error;
        h.destroy();
        if (err) detached_task_terminate(err);
        return std::noop_coroutine();
      }
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  T value{};
  Task<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }

  /// Relinquish ownership of the coroutine frame (used by spawn()).
  Handle release() { return std::exchange(handle_, nullptr); }

  /// Awaiting a task starts it (symmetric transfer) and resumes the
  /// awaiter when the task completes, delivering value or exception.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        if (handle.promise().error) std::rethrow_exception(handle.promise().error);
        if constexpr (!std::is_void_v<T>) return std::move(handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_{};
};

namespace detail {
template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}
inline Task<void> Promise<void>::get_return_object() {
  return Task<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}
}  // namespace detail

}  // namespace storm::sim
