#include "node/os_scheduler.hpp"

#include <algorithm>
#include <utility>

namespace storm::node {

using sim::SimTime;
using sim::Task;

// ---------------------------------------------------------------------------
// Proc
// ---------------------------------------------------------------------------

Proc::Proc(OsScheduler& os, std::string name, int cpu)
    : os_(os),
      name_(std::move(name)),
      cpu_(cpu),
      state_changed_(os.sim_),
      gate_(os.sim_, 1) {}

Task<> Proc::compute(SimTime work) {
  if (work <= SimTime::zero()) co_return;
  os_.cpus_[cpu_].quiet = false;
  co_await gate_.acquire();
  remaining_ = work;
  wants_cpu_ = true;
  os_.make_ready(*this, /*to_front=*/false);
  while (wants_cpu_) {
    co_await state_changed_.wait();
  }
  gate_.release();
}

void Proc::begin_busy() {
  os_.cpus_[cpu_].quiet = false;
  assert(!wants_cpu_ && "cannot busy-wait with compute() outstanding");
  busy_ = true;
  wants_cpu_ = true;
  // Effectively unbounded work; ended only by end_busy().
  remaining_ = SimTime::sec(1'000'000'000);
  os_.make_ready(*this, /*to_front=*/false);
}

void Proc::end_busy() {
  if (!busy_) return;
  os_.cpus_[cpu_].quiet = false;
  busy_ = false;
  if (st_ == St::Running) {
    os_.preempt(*this, /*requeue=*/false);
  } else if (queued_) {
    auto& q = os_.cpus_[cpu_].queue;
    q.erase(std::find(q.begin(), q.end(), this));
    queued_ = false;
    st_ = St::Idle;
  }
  wants_cpu_ = false;
  remaining_ = SimTime::zero();
}

void Proc::cancel_work() {
  if (busy_ || !wants_cpu_) return;
  os_.cpus_[cpu_].quiet = false;
  if (st_ == St::Running) {
    os_.preempt(*this, /*requeue=*/false);
  } else if (queued_) {
    auto& q = os_.cpus_[cpu_].queue;
    q.erase(std::find(q.begin(), q.end(), this));
    queued_ = false;
    st_ = St::Idle;
  }
  wants_cpu_ = false;
  remaining_ = SimTime::zero();
  state_changed_.notify_all();
}

void Proc::set_suspended(bool suspended) {
  if (suspended_ == suspended) return;
  os_.cpus_[cpu_].quiet = false;
  suspended_ = suspended;
  if (suspended) {
    if (st_ == St::Running) {
      os_.preempt(*this, /*requeue=*/false);
    } else if (queued_) {
      auto& q = os_.cpus_[cpu_].queue;
      q.erase(std::find(q.begin(), q.end(), this));
      queued_ = false;
      st_ = St::Idle;
    }
  } else if (wants_cpu_) {
    // Resumed by the gang scheduler: dispatch promptly.
    os_.make_ready(*this, /*to_front=*/true);
  }
}

// ---------------------------------------------------------------------------
// OsScheduler
// ---------------------------------------------------------------------------

OsScheduler::OsScheduler(sim::Simulator& sim, OsParams params, sim::Rng rng)
    : sim_(sim), params_(params), rng_(rng), cpus_(params.cpus) {}

Proc& OsScheduler::create(std::string name, int cpu) {
  assert(cpu >= 0 && cpu < params_.cpus);
  cpus_[cpu].quiet = false;
  procs_.push_back(
      std::unique_ptr<Proc>(new Proc(*this, std::move(name), cpu)));
  return *procs_.back();
}

void OsScheduler::make_ready(Proc& p, bool to_front) {
  cpus_[p.cpu_].quiet = false;
  if (p.suspended_ || p.queued_ || p.st_ == Proc::St::Running) return;
  p.st_ = Proc::St::Ready;
  p.queued_ = true;
  Cpu& c = cpus_[p.cpu_];
  if (to_front) {
    c.queue.push_front(&p);
  } else {
    c.queue.push_back(&p);
  }
  if (c.current == nullptr) {
    dispatch(p.cpu_);
  } else {
    maybe_arm_grab(p.cpu_);
  }
}

void OsScheduler::dispatch(int cpu) {
  Cpu& c = cpus_[cpu];
  c.quiet = false;
  if (c.current != nullptr || c.queue.empty()) return;
  Proc* p = c.queue.front();
  c.queue.pop_front();
  p->queued_ = false;
  c.current = p;
  p->st_ = Proc::St::Running;

  // Context switch + dispatch noise + any pending cache-refill penalty
  // are charged as extra work on this slice.
  const SimTime noise = SimTime::seconds(rng_.lognormal_median(
      params_.dispatch_noise_median.to_seconds(), params_.dispatch_noise_sigma));
  p->remaining_ += params_.context_switch + noise + p->penalty_;
  p->penalty_ = SimTime::zero();

  p->slice_start_ = sim_.now();
  p->work_done_ev_ = sim_.schedule_after(p->remaining_, [this, p] {
    p->work_done_ev_ = sim::kInvalidEvent;
    finish_work(*p);
  });
  arm_tick(cpu);
  p->state_changed_.notify_all();
}

void OsScheduler::finish_work(Proc& p) {
  Cpu& c = cpus_[p.cpu_];
  c.quiet = false;
  assert(c.current == &p);
  p.cpu_time_ += sim_.now() - p.slice_start_;
  p.remaining_ = SimTime::zero();
  p.wants_cpu_ = false;
  p.st_ = Proc::St::Idle;
  c.current = nullptr;
  disarm(c.tick_ev);
  p.state_changed_.notify_all();
  dispatch(p.cpu_);
}

void OsScheduler::preempt(Proc& p, bool requeue) {
  Cpu& c = cpus_[p.cpu_];
  c.quiet = false;
  assert(c.current == &p);
  if (p.work_done_ev_ != sim::kInvalidEvent) {
    sim_.cancel(p.work_done_ev_);
    p.work_done_ev_ = sim::kInvalidEvent;
  }
  const SimTime elapsed = sim_.now() - p.slice_start_;
  p.cpu_time_ += elapsed;
  p.remaining_ = p.remaining_ > elapsed ? p.remaining_ - elapsed : SimTime::zero();
  p.st_ = Proc::St::Idle;
  c.current = nullptr;
  disarm(c.tick_ev);
  if (requeue) make_ready(p, /*to_front=*/false);
  p.state_changed_.notify_all();
  dispatch(p.cpu_);
}

void OsScheduler::arm_tick(int cpu) {
  Cpu& c = cpus_[cpu];
  disarm(c.tick_ev);
  if (c.queue.empty()) return;  // sole runner keeps the CPU
  c.tick_ev = sim_.schedule_after(params_.tick, [this, cpu] {
    Cpu& cc = cpus_[cpu];
    cc.tick_ev = sim::kInvalidEvent;
    if (cc.current != nullptr && !cc.queue.empty()) {
      preempt(*cc.current, /*requeue=*/true);
    }
  });
}

void OsScheduler::disarm(sim::EventId& ev) {
  if (ev != sim::kInvalidEvent) {
    sim_.cancel(ev);
    ev = sim::kInvalidEvent;
  }
}

bool OsScheduler::cpu_quiescent(int cpu) const {
  const Cpu& c = cpus_[cpu];
  if (c.quiet) return true;
  if (c.current != nullptr || !c.queue.empty()) return false;
  for (const auto& p : procs_) {
    if (p->cpu_ == cpu && !p->quiescent()) return false;
  }
  // Nothing on this CPU can change state without passing through a
  // transition above that clears the bit, so the verdict is cacheable.
  c.quiet = true;
  return true;
}

SimTime OsScheduler::sample_dispatch_overhead(Proc& p) {
  const SimTime noise = SimTime::seconds(rng_.lognormal_median(
      params_.dispatch_noise_median.to_seconds(), params_.dispatch_noise_sigma));
  const SimTime overhead = params_.context_switch + noise + p.penalty_;
  p.penalty_ = SimTime::zero();
  return overhead;
}

void OsScheduler::maybe_arm_grab(int cpu) {
  Cpu& c = cpus_[cpu];
  if (c.grab_ev != sim::kInvalidEvent) return;  // a grab is already pending
  const SimTime d = SimTime::seconds(rng_.lognormal_median(
      params_.wakeup_grab_median.to_seconds(), params_.wakeup_grab_sigma));
  c.grab_ev = sim_.schedule_after(d, [this, cpu] {
    Cpu& cc = cpus_[cpu];
    cc.grab_ev = sim::kInvalidEvent;
    if (cc.current != nullptr && !cc.queue.empty()) {
      preempt(*cc.current, /*requeue=*/true);
    }
  });
}

}  // namespace storm::node
