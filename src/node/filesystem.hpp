// Filesystem models: NFS, local disk (ext2), and RAM disk.
//
// Calibrated against Figure 6 of the paper (read bandwidth of a 12 MB
// image with buffers in NIC vs main memory):
//
//     filesystem      -> NIC buffers   -> main-memory buffers
//     NFS                11.4 MB/s        11.2 MB/s
//     local disk (ext2)  31.5 MB/s        30.5 MB/s
//     RAM disk (ext2)   120   MB/s       218   MB/s
//
// Reads are performed by the NIC with assistance from a lightweight
// host process (TLB servicing + file access); that process's CPU time
// is modelled explicitly so the CPU-loaded experiments degrade reads
// the way the paper's do. Writes are host memcpys (the NM writes
// received fragments to the RAM disk), so they are charged entirely as
// CPU work on the writing process.
//
// NFS clients additionally share a single server pipe, which is what
// makes demand-paged application distribution inherently nonscalable
// (Sections 2.3 and 5.1).
#pragma once

#include <memory>
#include <string>

#include "net/qsnet.hpp"
#include "node/os_scheduler.hpp"
#include "sim/resources.hpp"
#include "sim/units.hpp"

namespace storm::node {

enum class FsKind { Nfs, LocalDisk, RamDisk };

std::string to_string(FsKind kind);

struct FsParams {
  sim::Bandwidth read_to_nic;    // NIC-resident destination buffers
  sim::Bandwidth read_to_main;   // main-memory destination buffers
  sim::Bandwidth write_bw;       // host-side write (CPU memcpy rate)
  sim::SimTime op_latency;       // per-operation setup
  bool uses_nfs_server = false;

  static FsParams nfs() {
    return {sim::Bandwidth::mb_per_s(11.4), sim::Bandwidth::mb_per_s(11.2),
            sim::Bandwidth::mb_per_s(10.0), sim::SimTime::millis(2.0), true};
  }
  static FsParams local_disk() {
    return {sim::Bandwidth::mb_per_s(31.5), sim::Bandwidth::mb_per_s(30.5),
            sim::Bandwidth::mb_per_s(28.0), sim::SimTime::millis(5.0), false};
  }
  static FsParams ram_disk() {
    return {sim::Bandwidth::mb_per_s(120.0), sim::Bandwidth::mb_per_s(218.0),
            sim::Bandwidth::mb_per_s(400.0), sim::SimTime::micros(30.0), false};
  }
  static FsParams for_kind(FsKind kind) {
    switch (kind) {
      case FsKind::Nfs: return nfs();
      case FsKind::LocalDisk: return local_disk();
      case FsKind::RamDisk: return ram_disk();
    }
    return ram_disk();
  }
};

/// The shared NFS server: all clients' reads flow through one pipe.
class NfsServer {
 public:
  NfsServer(sim::Simulator& sim, sim::Bandwidth capacity = sim::Bandwidth::mb_per_s(90))
      : pipe_(sim, capacity, "nfs-server") {}
  sim::SharedBandwidth& pipe() { return pipe_; }

 private:
  sim::SharedBandwidth pipe_;
};

/// Rate of the host "lightweight process" assisting NIC-driven reads
/// (TLB miss servicing and file access on behalf of the NIC). See the
/// calibration note on MachineParams::host_bcast_assist.
inline constexpr double kHostReadAssistMBps = 1200.0;

class Filesystem {
 public:
  /// `pci` may be null (no PCI contention modelling); `nfs` must be
  /// non-null iff the parameters say the filesystem uses the server.
  Filesystem(sim::Simulator& sim, FsParams params,
             sim::SharedBandwidth* pci, NfsServer* nfs)
      : sim_(sim), params_(params), pci_(pci), nfs_(nfs) {}

  const FsParams& params() const { return params_; }

  /// NIC-driven read of `bytes` into buffers at `place`, assisted by
  /// the `helper` host process (nullptr: helper cost folded into the
  /// nominal rate, used only by microbenches).
  sim::Task<> read(sim::Bytes bytes, net::BufferPlace place, Proc* helper);

  /// Host-side write of `bytes` by `writer` (CPU work).
  sim::Task<> write(sim::Bytes bytes, Proc& writer);

  /// Effective nominal read bandwidth for `place` (no contention).
  sim::Bandwidth nominal_read_bw(net::BufferPlace place) const {
    return place == net::BufferPlace::MainMemory ? params_.read_to_main
                                                 : params_.read_to_nic;
  }

 private:
  sim::Simulator& sim_;
  FsParams params_;
  sim::SharedBandwidth* pci_;
  NfsServer* nfs_;
};

}  // namespace storm::node
