// Per-node operating-system model: CPUs, preemptible processes, and a
// round-robin scheduler with wakeup boosting.
//
// Why this exists: the paper attributes two launch-time effects to the
// node OS — (1) the growth of execute time with node count is "skew
// caused by local operating system scheduling effects" (Section 3.1.1),
// and (2) the CPU-loaded experiment (Figure 3) shows dæmons competing
// with application processes for cycles. Reproducing both requires an
// OS model in which dæmon service time is real CPU time that contends
// with whatever else is pinned to the same processor.
//
// The model: each CPU runs at most one process; runnable processes on
// a CPU round-robin with a tick quantum; a process that becomes
// runnable while another runs "grabs" the CPU after a log-normally
// distributed delay (modelling wakeup preemption latency: kernel
// non-preemption windows + timer granularity). Dispatch charges a
// context-switch cost, and an explicit per-switch cache-refill penalty
// can be added by the gang scheduler.
#pragma once

#include <cassert>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace storm::node {

struct OsParams {
  int cpus = 4;
  sim::SimTime tick = sim::SimTime::ms(10);           // RR quantum
  sim::SimTime context_switch = sim::SimTime::us(10);
  sim::SimTime dispatch_noise_median = sim::SimTime::us(12);
  double dispatch_noise_sigma = 0.4;
  // Wakeup preemption: how long a newly-runnable process waits before
  // it can take the CPU from the incumbent.
  sim::SimTime wakeup_grab_median = sim::SimTime::millis(1.5);
  double wakeup_grab_sigma = 1.0;
};

class OsScheduler;

/// A simulated OS process. Application and dæmon code runs as a
/// coroutine that calls `compute()` for every stretch of CPU work;
/// everything between compute calls (waiting on events, messages,
/// DMA completion) consumes no CPU.
class Proc {
 public:
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  /// Consume `work` of CPU time. Returns when the work has been
  /// executed; the wall-clock (simulated) duration depends on
  /// contention, suspension, and scheduling noise. Concurrent
  /// compute() requests against the same process are FIFO-serialised —
  /// a process is a single thread of control, so simultaneous service
  /// demands (e.g. the MM host helper assisting both the file-read and
  /// the broadcast stages of the launch pipeline) queue up behind each
  /// other. That serialisation is precisely the paper's explanation
  /// for the 131 MB/s protocol bandwidth (Section 3.3.1).
  sim::Task<> compute(sim::SimTime work);

  /// Gang-scheduling control: a suspended process keeps its pending
  /// work but is removed from the run queue until resumed.
  void set_suspended(bool suspended);
  bool suspended() const { return suspended_; }

  /// Busy-wait bracket: between begin_busy() and end_busy() the
  /// process burns CPU whenever the scheduler runs it (a user-level
  /// communication library polling the NIC). It is preempted by
  /// ticks/grabs like any compute, but never completes on its own.
  /// No compute() may be outstanding while busy.
  void begin_busy();
  void end_busy();
  bool busy_waiting() const { return busy_; }

  /// Charge an extra cost (cache/TLB refill) to this process's next
  /// dispatch. Used by the gang scheduler's context switches.
  void add_penalty(sim::SimTime t) { penalty_ += t; }

  /// Abort any in-flight compute(): the pending work is discarded and
  /// the blocked compute() call returns immediately. Used by the crash
  /// model — a dead node's processes stop mid-instruction. Busy-wait
  /// brackets are not touched (their owner ends them after it is woken
  /// through its blocking primitive).
  void cancel_work();

  const std::string& name() const { return name_; }
  int cpu() const { return cpu_; }
  bool running() const { return st_ == St::Running; }
  bool idle() const { return st_ == St::Idle && !wants_cpu_; }

  /// Total CPU time actually consumed (for utilisation accounting).
  sim::SimTime cpu_time() const { return cpu_time_; }

  /// True when this process could not possibly touch its CPU until
  /// something new wakes it: no compute in flight or queued behind the
  /// gate, no busy-wait bracket, not on a run queue. The dæmon sweep's
  /// eligibility test — a quiescent process's slice accounting can be
  /// fast-forwarded without the run-queue machinery observing any
  /// difference.
  bool quiescent() const {
    return st_ == St::Idle && !wants_cpu_ && !busy_ && !queued_ &&
           gate_.available() > 0 && gate_.waiting() == 0;
  }

  /// Batched fast-path accounting: charge a fully-simulated exclusive
  /// slice (the process held an otherwise idle CPU for `t`) without a
  /// dispatch/finish event pair. Only valid bracketed by quiescent()
  /// states; the caller owns the equivalence argument.
  void charge_batched_slice(sim::SimTime t) { cpu_time_ += t; }

 private:
  friend class OsScheduler;
  Proc(OsScheduler& os, std::string name, int cpu);

  enum class St { Idle, Ready, Running };

  OsScheduler& os_;
  std::string name_;
  int cpu_;
  St st_ = St::Idle;
  bool suspended_ = false;
  bool busy_ = false;        // busy-wait bracket active
  bool wants_cpu_ = false;   // has unfinished compute() work
  bool queued_ = false;      // present in the CPU run queue
  sim::SimTime remaining_{};
  sim::SimTime penalty_{};
  sim::SimTime slice_start_{};
  sim::SimTime cpu_time_{};
  sim::EventId work_done_ev_ = sim::kInvalidEvent;
  sim::Signal state_changed_;
  sim::Semaphore gate_;  // FIFO-serialises concurrent compute() calls
};

class OsScheduler {
 public:
  OsScheduler(sim::Simulator& sim, OsParams params, sim::Rng rng);
  OsScheduler(const OsScheduler&) = delete;
  OsScheduler& operator=(const OsScheduler&) = delete;

  sim::Simulator& simulator() { return sim_; }
  const OsParams& params() const { return params_; }
  int cpus() const { return params_.cpus; }

  /// Create a process pinned to `cpu`.
  Proc& create(std::string name, int cpu);

  /// The process currently holding `cpu` (nullptr if idle).
  const Proc* current(int cpu) const { return cpus_[cpu].current; }

  /// Number of runnable-but-waiting processes on `cpu`.
  std::size_t queue_depth(int cpu) const { return cpus_[cpu].queue.size(); }

  /// True when nothing on `cpu` is running, queued, or in a state from
  /// which it could claim the CPU without a fresh wakeup (mid-compute
  /// between the work-done event and the coroutine resume counts as
  /// busy: the gate is still held). While a CPU is quiescent, a single
  /// dispatch of new work is the only possible next action — the
  /// precondition for the dæmon sweep's batched slice.
  bool cpu_quiescent(int cpu) const;

  /// Exactly the per-dispatch overhead dispatch() would charge `p` on
  /// an idle CPU — context switch + one log-normal noise draw from the
  /// scheduler's stream + any pending penalty (consumed). The batched
  /// fast path calls this where dispatch() would have run, so the RNG
  /// stream advances identically to the event-driven path.
  sim::SimTime sample_dispatch_overhead(Proc& p);

 private:
  friend class Proc;

  struct Cpu {
    Proc* current = nullptr;
    std::deque<Proc*> queue;
    sim::EventId tick_ev = sim::kInvalidEvent;
    sim::EventId grab_ev = sim::kInvalidEvent;
    // Memoized cpu_quiescent() verdict: set true only by a full check,
    // cleared by every scheduler or proc state transition on this CPU.
    // The batched periodic sweep (DESIGN §2.3) probes quiescence twice
    // per node per epoch; in the idle steady state this turns that
    // probe into a single warm load instead of a proc-table walk.
    mutable bool quiet = false;
  };

  void make_ready(Proc& p, bool to_front);
  void dispatch(int cpu);
  void finish_work(Proc& p);
  void preempt(Proc& p, bool requeue);
  void arm_tick(int cpu);
  void disarm(sim::EventId& ev);
  void maybe_arm_grab(int cpu);

  sim::Simulator& sim_;
  OsParams params_;
  sim::Rng rng_;
  std::vector<Cpu> cpus_;
  std::vector<std::unique_ptr<Proc>> procs_;
};

}  // namespace storm::node
