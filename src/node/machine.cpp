#include "node/machine.hpp"

namespace storm::node {

Machine::Machine(sim::Simulator& sim, int id, MachineParams params,
                 net::QsNet* net, NfsServer* nfs)
    : sim_(sim),
      id_(id),
      params_(params),
      rng_(sim.rng().fork(0x4D41'4348ULL + static_cast<std::uint64_t>(id))),
      os_(sim, params.os, rng_.fork(1)),
      net_(net) {
  sim::SharedBandwidth* pci =
      net_ != nullptr ? &net_->pci(id_) : nullptr;
  for (FsKind kind : {FsKind::Nfs, FsKind::LocalDisk, FsKind::RamDisk}) {
    fs_[static_cast<int>(kind)] = std::make_unique<Filesystem>(
        sim_, FsParams::for_kind(kind), pci,
        kind == FsKind::Nfs ? nfs : nullptr);
  }
}

}  // namespace storm::node
