// A compute node: CPUs + OS scheduler + filesystems + NIC attachment.
//
// Mirrors the paper's testbed node (Table 3): AlphaServer ES40 with
// 4 CPUs, 8 GB RAM, a 64-bit/33 MHz PCI bus, and a QM-400 Elan3 NIC.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "net/qsnet.hpp"
#include "node/filesystem.hpp"
#include "node/os_scheduler.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace storm::node {

struct MachineParams {
  OsParams os{};

  // Process-creation costs (drive the execute-time skew of Figure 2:
  // the job is running once the slowest node has forked).
  sim::SimTime fork_median = sim::SimTime::millis(1.8);
  double fork_sigma = 0.5;
  sim::SimTime exec_overhead = sim::SimTime::millis(1.0);  // exec + page-in

  // Cache/TLB refill charged to a process resumed by a gang switch
  // (small: footnote 4 of the paper notes SWEEP3D's poor locality
  // means co-resident processes barely pollute each other's sets).
  sim::SimTime switch_penalty = sim::SimTime::us(12);

  // Host "lightweight process" service rate for outbound broadcast
  // chunks (TLB servicing + DMA descriptor setup on behalf of the
  // NIC). Together with the read-assist rate (filesystem.hpp) this is
  // calibrated so that the serialised helper work closes the gap
  // between the 175 MB/s PCI bound and the observed 131 MB/s protocol
  // bandwidth (Section 3.3.1): per 512 KB chunk, ~0.44 ms of read
  // assist plus ~0.40 ms of broadcast assist on the critical path.
  sim::Bandwidth host_bcast_assist = sim::Bandwidth::mb_per_s(1300.0);

  // Elan3 NIC virtual-memory reach; multi-buffering footprints beyond
  // this thrash the NIC TLB (the paper's explanation for why >4 slots
  // do not help in Figure 8).
  double nic_tlb_coverage_mb = 2.0;
  double tlb_penalty_per_mb = 0.15;  // host-assist inflation per excess MB
};

class Machine {
 public:
  /// `net` may be null for single-node unit tests. `nfs` is the
  /// cluster-wide NFS server (null: NFS reads are client-limited only).
  Machine(sim::Simulator& sim, int id, MachineParams params, net::QsNet* net,
          NfsServer* nfs);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Simulator& simulator() { return sim_; }
  int id() const { return id_; }
  const MachineParams& params() const { return params_; }
  OsScheduler& os() { return os_; }
  net::QsNet* network() { return net_; }
  sim::Rng& rng() { return rng_; }

  Filesystem& fs(FsKind kind) { return *fs_[static_cast<int>(kind)]; }

  /// Sample this node's fork()+exec() cost (log-normal tail models the
  /// OS skew the paper reports).
  sim::SimTime sample_fork_cost() {
    return sim::SimTime::seconds(rng_.lognormal_median(
               params_.fork_median.to_seconds(), params_.fork_sigma)) +
           params_.exec_overhead;
  }

 private:
  sim::Simulator& sim_;
  int id_;
  MachineParams params_;
  sim::Rng rng_;
  OsScheduler os_;
  net::QsNet* net_;
  std::array<std::unique_ptr<Filesystem>, 3> fs_;
};

}  // namespace storm::node
