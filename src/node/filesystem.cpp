#include "node/filesystem.hpp"

#include <algorithm>

namespace storm::node {

using net::BufferPlace;
using sim::Bandwidth;
using sim::Bytes;
using sim::SimTime;
using sim::Task;

std::string to_string(FsKind kind) {
  switch (kind) {
    case FsKind::Nfs: return "NFS";
    case FsKind::LocalDisk: return "Local (ext2)";
    case FsKind::RamDisk: return "RAM (ext2)";
  }
  return "?";
}

Task<> Filesystem::read(Bytes bytes, BufferPlace place, Proc* helper) {
  if (bytes <= 0) co_return;
  const SimTime start = sim_.now();

  // The nominal read rates of Figure 6 were measured on the live
  // system while the rest of the launch pipeline ran, so they already
  // embody the I/O-bus crossing; the paper's min(BW_read, BW_broadcast)
  // composition (Section 3.3.1) treats the stages as independently
  // capped, and so do we — reads do not additionally contend on the
  // PCI model.
  const Bandwidth rate = nominal_read_bw(place);

  // The host lightweight process services NIC TLB misses and performs
  // the file access; that CPU time overlaps the DMA but lengthens the
  // read when the host is loaded (or the helper is slow to dispatch).
  if (helper != nullptr) {
    const SimTime host_work =
        Bandwidth::mb_per_s(kHostReadAssistMBps).time_for(bytes);
    co_await helper->compute(host_work);
  }

  if (nfs_ != nullptr && params_.uses_nfs_server) {
    // The read completes when the slower of the two paths does: the
    // client-side protocol (nominal per-stream rate) and the shared
    // server pipe, which concurrent clients divide between them.
    co_await nfs_->pipe().transfer(bytes);
    const SimTime client_end = start + params_.op_latency + rate.time_for(bytes);
    if (sim_.now() < client_end) co_await sim_.delay(client_end - sim_.now());
    co_return;
  }

  // DMA-limited completion: the read finishes when the slower of the
  // helper path and the DMA path does.
  const SimTime dma_end = start + params_.op_latency + rate.time_for(bytes);
  if (sim_.now() < dma_end) co_await sim_.delay(dma_end - sim_.now());
}

Task<> Filesystem::write(Bytes bytes, Proc& writer) {
  if (bytes <= 0) co_return;
  co_await writer.compute(params_.op_latency + params_.write_bw.time_for(bytes));
}

}  // namespace storm::node
