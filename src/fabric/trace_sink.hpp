// StructuredTraceSink middleware: fixed-width binary event records for
// the control plane, replacing raw printf tracing. Every operation
// crossing the fabric is recorded with its component / node / message-
// class tags and the middleware chain's final verdict, so tests can
// query the control plane ("how many strobes were delivered to node
// 5?", "was this heartbeat dropped?") and determinism suites can
// byte-compare whole runs. An optional echo mode renders records as
// human-readable stderr lines for interactive debugging.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fabric/fabric.hpp"

namespace storm::fabric {

/// One fixed-width trace record (40 bytes on the wire).
struct TraceRecord {
  std::int64_t t_ns = 0;         // simulated time of the operation
  std::uint8_t op = 0;           // OpKind
  std::uint8_t cls = 0;          // MsgClass
  std::uint8_t component = 0;    // Component
  std::uint8_t flags = 0;        // kDropped | kDelayed | kDuplicated
  std::int32_t src = -1;         // issuing node
  std::int32_t dst_first = 0;    // destination set
  std::int32_t dst_count = 0;
  std::int64_t a = 0;            // ControlMessage::word_a()
  std::int64_t b = 0;            // ControlMessage::word_b()

  static constexpr std::uint8_t kDropped = 1;
  static constexpr std::uint8_t kDelayed = 2;
  static constexpr std::uint8_t kDuplicated = 4;

  bool dropped() const { return flags & kDropped; }
  bool delayed() const { return flags & kDelayed; }
  bool duplicated() const { return flags & kDuplicated; }
  OpKind op_kind() const { return static_cast<OpKind>(op); }
  MsgClass msg_class() const { return static_cast<MsgClass>(cls); }
  Component comp() const { return static_cast<Component>(component); }
};

/// Serialised size of one record (packed little-endian).
inline constexpr std::size_t kTraceRecordBytes = 40;

class StructuredTraceSink final : public Middleware {
 public:
  StructuredTraceSink(sim::Simulator& sim) : sim_(sim) {
    // Default: the control-plane signal, not the per-poll noise.
    set_recorded(OpKind::Xfer, true);
    set_recorded(OpKind::CompareAndWrite, true);
    set_recorded(OpKind::CommandMulticast, true);
    set_recorded(OpKind::CommandDeliver, true);
    set_recorded(OpKind::Note, true);
  }

  /// Select which operation kinds are recorded (TestEvent / WaitEvent /
  /// WriteLocal / SignalLocal are off by default — they are per-poll
  /// hot-path noise).
  void set_recorded(OpKind op, bool on) {
    recorded_[static_cast<std::size_t>(op)] = on;
  }

  /// Echo each record to stderr as a readable timeline line.
  void set_echo(bool on) { echo_ = on; }

  /// Bound the record store to the newest `n` records (0 = unbounded,
  /// the default). When full, each new record evicts the oldest one;
  /// evictions are counted in evicted(). Shrinking below the current
  /// size evicts the oldest surplus immediately.
  void set_capacity(std::size_t n);
  std::size_t capacity() const { return capacity_; }
  std::size_t evicted() const { return evicted_; }

  std::string_view name() const override { return "trace-sink"; }
  void apply(const Envelope&, Action&) override {}  // purely passive
  void observe(const Envelope& e, const Action& a) override;

  // --- queries ------------------------------------------------------------
  const std::vector<TraceRecord>& records() const {
    linearize();
    return records_;
  }
  void clear() {
    records_.clear();
    head_ = 0;
    evicted_ = 0;
  }

  std::size_t count(MsgClass c) const;
  std::size_t count(OpKind op) const;
  std::size_t count(MsgClass c, OpKind op) const;
  std::size_t dropped_count(MsgClass c) const;

  /// Packed little-endian serialisation of every record, suitable for
  /// byte-identical comparison between same-seed runs.
  std::vector<std::uint8_t> bytes() const;

 private:
  /// Rotate the ring so records_[0] is the oldest surviving record.
  /// Cheap no-op while the ring has not wrapped; lazily restores the
  /// plain-vector invariant every external reader relies on.
  void linearize() const;

  sim::Simulator& sim_;
  mutable std::vector<TraceRecord> records_;
  mutable std::size_t head_ = 0;  // ring index of the oldest record
  std::size_t capacity_ = 0;      // 0 = unbounded
  std::size_t evicted_ = 0;
  std::array<bool, kOpKindCount> recorded_{};
  bool echo_ = false;
};

}  // namespace storm::fabric
