#include "fabric/trace_replay.hpp"

#include <algorithm>

namespace storm::fabric {

namespace {

/// The operation kinds StructuredTraceSink records by default — the
/// replay stream is filtered to exactly this set so the lockstep
/// position matches the recording regardless of per-poll noise.
constexpr bool replayed_kind(OpKind op) {
  return op == OpKind::Xfer || op == OpKind::CompareAndWrite ||
         op == OpKind::CommandMulticast || op == OpKind::CommandDeliver ||
         op == OpKind::Note;
}

constexpr bool same_identity(const TraceRecord& r, const Envelope& e) {
  return r.op == static_cast<std::uint8_t>(e.op) &&
         r.cls == static_cast<std::uint8_t>(e.cls()) &&
         r.src == e.src && r.dst_first == e.dsts.first &&
         r.dst_count == e.dsts.count && r.a == e.msg.word_a() &&
         r.b == e.msg.word_b();
}

}  // namespace

ReplayDrops::ReplayDrops(std::vector<TraceRecord> script) {
  script_.reserve(script.size());
  for (const TraceRecord& r : script) {
    if (replayed_kind(r.op_kind())) script_.push_back(r);
  }
}

void ReplayDrops::apply(const Envelope& e, Action& a) {
  if (!replayed_kind(e.op)) return;
  if (pos_ >= script_.size()) {
    ++mismatches_;  // replay produced more operations than recorded
    return;
  }
  const TraceRecord& r = script_[pos_++];
  if (!same_identity(r, e)) {
    ++mismatches_;  // diverged: never drop on a guess
    return;
  }
  if (r.dropped()) a.drop = true;
}

TraceReplayer TraceReplayer::from_bytes(
    const std::vector<std::uint8_t>& bytes) {
  TraceReplayer rp;
  auto get32 = [](const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  };
  auto get64 = [&get32](const std::uint8_t* p) {
    return static_cast<std::uint64_t>(get32(p)) |
           (static_cast<std::uint64_t>(get32(p + 4)) << 32);
  };
  const std::size_t n = bytes.size() / kTraceRecordBytes;
  rp.records_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* p = bytes.data() + i * kTraceRecordBytes;
    TraceRecord r;
    r.t_ns = static_cast<std::int64_t>(get64(p));
    r.op = p[8];
    r.cls = p[9];
    r.component = p[10];
    r.flags = p[11];
    r.src = static_cast<std::int32_t>(get32(p + 12));
    r.dst_first = static_cast<std::int32_t>(get32(p + 16));
    r.dst_count = static_cast<std::int32_t>(get32(p + 20));
    r.a = static_cast<std::int64_t>(get64(p + 24));
    r.b = static_cast<std::int64_t>(get64(p + 32));
    rp.records_.push_back(r);
  }
  return rp;
}

FaultCampaign TraceReplayer::campaign() const {
  FaultCampaign c;
  for (const TraceRecord& r : records_) {
    if (r.op_kind() != OpKind::Note || r.msg_class() != MsgClass::Fault)
      continue;
    const auto at = sim::SimTime::ns(r.t_ns);
    switch (static_cast<FaultCampaign::EventKind>(r.a)) {
      case FaultCampaign::EventKind::CrashNode:
        c.crash_node(static_cast<int>(r.b), at);
        break;
      case FaultCampaign::EventKind::RecoverNode:
        c.recover_node(static_cast<int>(r.b), at);
        break;
      case FaultCampaign::EventKind::CrashPrimaryMm:
        c.crash_primary_mm(at);
        break;
    }
  }
  return c;
}

std::shared_ptr<ReplayDrops> TraceReplayer::middleware() const {
  return std::make_shared<ReplayDrops>(records_);
}

}  // namespace storm::fabric
