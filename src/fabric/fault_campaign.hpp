// Deterministic fault-campaign harness: a scripted (or seeded)
// schedule of node crashes, recoveries, primary-MM death and network
// partitions, driven into a running cluster through plain callbacks.
//
// The campaign lives in the fabric layer and knows nothing about the
// dæmons: the harness (bench/fig_recovery, examples, tests) supplies
// CampaignHooks that translate "crash node 7" into whatever the system
// under test does about it. The schedule itself is computed up front —
// seeded generation consumes randomness only at build time, never
// while the simulation runs — so two same-seed campaigns inject the
// identical fault sequence at the identical simulated instants, and
// byte-identical runs remain testable end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fabric/fabric.hpp"
#include "fabric/fault_injector.hpp"
#include "fabric/partition_simulator.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace storm::fabric {

/// How the campaign acts on the system under test. Any hook may be
/// left empty; matching events then become no-ops.
struct CampaignHooks {
  std::function<void(int node)> crash_node;
  std::function<void(int node)> recover_node;
  std::function<void()> crash_primary_mm;
};

class FaultCampaign {
 public:
  enum class EventKind : std::uint8_t {
    CrashNode = 0,
    RecoverNode,
    CrashPrimaryMm,
  };
  struct Event {
    sim::SimTime at{};
    EventKind kind = EventKind::CrashNode;
    int node = -1;  // unused for CrashPrimaryMm
  };
  struct PartitionWindow {
    std::vector<int> island;
    sim::SimTime start{};
    sim::SimTime end{};
  };
  /// One-way cut: `from` can no longer reach `to` (the reverse
  /// direction still delivers), optionally restricted to a set of
  /// message classes. Split-brain campaigns use this to take a
  /// leader's acks away without deafening it.
  struct AsymWindow {
    std::vector<int> from;
    std::vector<int> to;
    sim::SimTime start{};
    sim::SimTime end{};
    std::vector<MsgClass> classes;  // empty = every class
  };

  // --- scripted construction ---------------------------------------------
  void crash_node(int node, sim::SimTime at) {
    events_.push_back(Event{at, EventKind::CrashNode, node});
  }
  void recover_node(int node, sim::SimTime at) {
    events_.push_back(Event{at, EventKind::RecoverNode, node});
  }
  void crash_primary_mm(sim::SimTime at) {
    events_.push_back(Event{at, EventKind::CrashPrimaryMm, -1});
  }
  void partition(std::vector<int> island, sim::SimTime start,
                 sim::SimTime end) {
    partitions_.push_back(PartitionWindow{std::move(island), start, end});
  }
  void asym_partition(std::vector<int> from, std::vector<int> to,
                      sim::SimTime start, sim::SimTime end,
                      std::vector<MsgClass> classes = {}) {
    asym_.push_back(AsymWindow{std::move(from), std::move(to), start, end,
                               std::move(classes)});
  }

  // --- seeded construction -------------------------------------------------
  struct SeedSpec {
    int nodes = 0;          // machine size
    int crashes = 1;        // distinct nodes to crash
    sim::SimTime window_start{};
    sim::SimTime window_end{};
    // Downtime sampled U[min, max]; max == 0 means crashed nodes never
    // recover within the campaign.
    sim::SimTime min_downtime{};
    sim::SimTime max_downtime{};
    std::vector<int> protect;  // nodes exempt from crashing (MMs)
  };
  /// Build a deterministic schedule from `rng` (fork it from the
  /// simulation's master stream). All randomness is consumed here.
  static FaultCampaign seeded(sim::Rng rng, const SeedSpec& spec);

  // --- installation --------------------------------------------------------
  /// Schedule every event on `sim`. When partition windows exist, a
  /// PartitionSimulator carrying them is pushed onto `fabric` and
  /// returned (nullptr otherwise, or when `fabric` is null).
  std::shared_ptr<PartitionSimulator> arm(sim::Simulator& sim,
                                          MechanismFabric* fabric,
                                          CampaignHooks hooks);

  /// Events sorted by (time, kind, node) — the order arm() fires them.
  const std::vector<Event>& events() {
    sort_events();
    return events_;
  }
  const std::vector<PartitionWindow>& partitions() const {
    return partitions_;
  }
  const std::vector<AsymWindow>& asym_partitions() const { return asym_; }
  /// The injector arm() pushed to carry the asymmetric windows — null
  /// until arm() runs, or when no asym windows exist. Harnesses read
  /// its one_way_drops() to prove the cut actually bit.
  std::shared_ptr<FaultInjector> one_way_injector() const {
    return injector_;
  }

 private:
  void sort_events();

  std::vector<Event> events_;
  std::vector<PartitionWindow> partitions_;
  std::vector<AsymWindow> asym_;
  std::shared_ptr<FaultInjector> injector_;
};

}  // namespace storm::fabric
