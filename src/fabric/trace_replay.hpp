// TraceReplayer: turn a recorded StructuredTraceSink byte stream back
// into a scripted fault schedule, making any observed faulty run a
// regression test.
//
// Two artefacts are reconstructed from the stream:
//
//   * The fault campaign. FaultCampaign::arm() announces every
//     crash/recover/MM-death event as a Fault note right before its
//     hook fires, so the recorded stream is self-describing:
//     campaign() rebuilds the exact schedule from those notes.
//
//   * The per-operation drop decisions. ReplayDrops walks the recorded
//     stream in lockstep with the replay run's envelopes — the workload
//     is deterministic, so operation N of the replay is operation N of
//     the recording — and re-applies the recorded drop verdicts
//     positionally. Mismatched envelopes (diverged replay) are counted,
//     never dropped.
//
// Limitation: the sink records *that* an operation was delayed or
// duplicated, not by how much, so only drop decisions (and the fault
// schedule itself) replay exactly. Record with drop/crash-only
// campaigns when byte-identity matters; mismatches() flags divergence
// otherwise.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/fault_campaign.hpp"
#include "fabric/trace_sink.hpp"

namespace storm::fabric {

/// Middleware that re-applies recorded drop verdicts in lockstep.
class ReplayDrops final : public Middleware {
 public:
  explicit ReplayDrops(std::vector<TraceRecord> script);

  std::string_view name() const override { return "replay-drops"; }
  void apply(const Envelope& e, Action& a) override;

  /// Envelopes whose identity did not match the recorded operation at
  /// the same position (the replay diverged from the recording).
  std::size_t mismatches() const { return mismatches_; }
  /// Recorded operations consumed so far.
  std::size_t position() const { return pos_; }

 private:
  std::vector<TraceRecord> script_;  // recorded-kind records only
  std::size_t pos_ = 0;
  std::size_t mismatches_ = 0;
};

class TraceReplayer {
 public:
  /// Parse a StructuredTraceSink::bytes() image (40-byte records).
  /// Trailing partial records are ignored.
  static TraceReplayer from_bytes(const std::vector<std::uint8_t>& bytes);

  const std::vector<TraceRecord>& records() const { return records_; }

  /// Rebuild the fault schedule from the stream's Fault notes.
  FaultCampaign campaign() const;

  /// Fresh lockstep drop-replay middleware over the recorded stream.
  /// Push it *before* the replay run's own StructuredTraceSink so the
  /// sink observes the re-applied verdicts.
  std::shared_ptr<ReplayDrops> middleware() const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace storm::fabric
