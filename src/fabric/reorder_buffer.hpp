// ReorderBuffer middleware: jittered per-destination delivery delays
// that intentionally reorder MM→NM command deliveries, both between
// destinations of one multicast and between consecutive commands to
// the same destination. DESIGN.md claims NM command handling is
// order-insensitive where it matters — strobes carry the absolute
// Ousterhout row and heartbeat epochs are monotonic — and this
// middleware exists to let a test hold that claim to the fire.
//
// Only CommandDeliver envelopes are perturbed: the wire leg of a
// multicast (CommandMulticast) and the mechanism operations themselves
// are left alone, so the reordering models per-destination queue-
// drain skew rather than network anarchy. All randomness comes from
// one forked stream: same seed, same interleaving.
#pragma once

#include <array>
#include <cstdint>

#include "fabric/fabric.hpp"
#include "sim/random.hpp"

namespace storm::fabric {

class ReorderBuffer final : public Middleware {
 public:
  /// `rng` should be forked from the simulation's master stream.
  explicit ReorderBuffer(sim::Rng rng) : rng_(rng) {
    enabled_.fill(true);
  }

  /// Each CommandDeliver of an enabled class is held for U[0, window).
  /// Two deliveries issued back-to-back can therefore swap whenever
  /// their draws differ by more than the issue gap.
  void set_window(sim::SimTime window) { window_ = window; }
  sim::SimTime window() const { return window_; }

  /// Restrict the jitter to specific message classes (all by default).
  void enable_class(MsgClass c, bool on) {
    enabled_[static_cast<std::size_t>(c)] = on;
  }

  std::int64_t perturbed() const { return perturbed_; }

  std::string_view name() const override { return "reorder-buffer"; }

  void apply(const Envelope& e, Action& a) override {
    if (e.op != OpKind::CommandDeliver) return;
    if (window_ <= sim::SimTime::zero()) return;
    if (!enabled_[static_cast<std::size_t>(e.cls())]) return;
    a.delay += sim::SimTime::seconds(
        rng_.uniform(0.0, window_.to_seconds()));
    ++perturbed_;
  }

 private:
  sim::Rng rng_;
  sim::SimTime window_{};
  std::array<bool, kMsgClassCount> enabled_{};
  std::int64_t perturbed_ = 0;
};

}  // namespace storm::fabric
