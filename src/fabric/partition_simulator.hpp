// PartitionSimulator middleware: model a switch failure / network
// partition rather than single-node death. For the duration of each
// configured window an "island" of nodes is cut off from the rest of
// the machine; everything crossing the boundary is lost:
//
//   CommandDeliver    dropped when source and destination sit on
//                     opposite sides (the command never arrives).
//   CompareAndWrite   dropped when any destination is across the cut —
//                     an unreachable node cannot acknowledge, so the
//                     global conditional reads "condition not met",
//                     exactly what a dead node looks like to the MM.
//   Xfer              dropped when the multicast spans the cut: the
//                     circuit-switched hardware multicast is atomic
//                     (all destinations ack every packet or the
//                     transfer aborts), so a severed branch kills the
//                     whole operation.
//   CommandMulticast  left intact; the per-destination deliveries
//                     above do the precise filtering.
//
// Windows are scripted (no randomness): the fault campaign computes
// them up front, so two same-seed runs partition identically.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/simulator.hpp"

namespace storm::fabric {

class PartitionSimulator final : public Middleware {
 public:
  explicit PartitionSimulator(sim::Simulator& sim) : sim_(sim) {}

  /// Cut `island` off from every other node during [start, end).
  /// Windows may overlap; a node is islanded if any active window
  /// lists it.
  void partition(std::vector<int> island, sim::SimTime start,
                 sim::SimTime end) {
    windows_.push_back(Window{std::move(island), start, end});
  }

  std::int64_t dropped() const { return dropped_; }
  bool active() const {
    const sim::SimTime now = sim_.now();
    for (const Window& w : windows_) {
      if (w.start <= now && now < w.end) return true;
    }
    return false;
  }

  std::string_view name() const override { return "partition-simulator"; }

  void apply(const Envelope& e, Action& a) override {
    const bool cuttable = e.op == OpKind::Xfer ||
                          e.op == OpKind::CompareAndWrite ||
                          e.op == OpKind::CommandDeliver;
    if (!cuttable || windows_.empty()) return;
    const sim::SimTime now = sim_.now();
    for (const Window& w : windows_) {
      if (now < w.start || now >= w.end) continue;
      if (crosses(w, e)) {
        a.drop = true;
        ++dropped_;
        return;
      }
    }
  }

 private:
  struct Window {
    std::vector<int> island;
    sim::SimTime start;
    sim::SimTime end;
    bool islanded(int node) const {
      for (const int n : island) {
        if (n == node) return true;
      }
      return false;
    }
  };

  static bool crosses(const Window& w, const Envelope& e) {
    const bool src_in = w.islanded(e.src);
    for (int n = e.dsts.first; n <= e.dsts.last(); ++n) {
      if (w.islanded(n) != src_in) return true;
    }
    return false;
  }

  sim::Simulator& sim_;
  std::vector<Window> windows_;
  std::int64_t dropped_ = 0;
};

}  // namespace storm::fabric
