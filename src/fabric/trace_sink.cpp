#include "fabric/trace_sink.hpp"

#include <algorithm>
#include <cstdio>

namespace storm::fabric {

void StructuredTraceSink::linearize() const {
  if (head_ == 0) return;
  std::rotate(records_.begin(),
              records_.begin() + static_cast<std::ptrdiff_t>(head_),
              records_.end());
  head_ = 0;
}

void StructuredTraceSink::set_capacity(std::size_t n) {
  capacity_ = n;
  if (capacity_ == 0 || records_.size() <= capacity_) return;
  linearize();
  const std::size_t surplus = records_.size() - capacity_;
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(surplus));
  evicted_ += surplus;
}

void StructuredTraceSink::observe(const Envelope& e, const Action& a) {
  if (!recorded_[static_cast<std::size_t>(e.op)]) return;
  TraceRecord r;
  r.t_ns = sim_.now().raw_ns();
  r.op = static_cast<std::uint8_t>(e.op);
  r.cls = static_cast<std::uint8_t>(e.cls());
  r.component = static_cast<std::uint8_t>(e.component);
  r.flags = static_cast<std::uint8_t>(
      (a.drop ? TraceRecord::kDropped : 0) |
      (a.delay > sim::SimTime::zero() ? TraceRecord::kDelayed : 0) |
      (a.duplicates > 0 ? TraceRecord::kDuplicated : 0));
  r.src = e.src;
  r.dst_first = e.dsts.first;
  r.dst_count = e.dsts.count;
  r.a = e.msg.word_a();
  r.b = e.msg.word_b();
  if (capacity_ > 0 && records_.size() >= capacity_) {
    records_[head_] = r;
    head_ = (head_ + 1) % records_.size();
    ++evicted_;
  } else {
    records_.push_back(r);
  }

  if (echo_) {
    std::fprintf(stderr,
                 "[%12.6f ms] %-4.*s %-11.*s %-10.*s %d->[%d+%d] a=%lld "
                 "b=%lld%s%s%s\n",
                 sim_.now().to_millis(),
                 static_cast<int>(to_string(e.component).size()),
                 to_string(e.component).data(),
                 static_cast<int>(to_string(e.op).size()),
                 to_string(e.op).data(),
                 static_cast<int>(to_string(e.cls()).size()),
                 to_string(e.cls()).data(), e.src, e.dsts.first, e.dsts.count,
                 static_cast<long long>(r.a), static_cast<long long>(r.b),
                 r.dropped() ? " DROPPED" : "", r.delayed() ? " DELAYED" : "",
                 r.duplicated() ? " DUPLICATED" : "");
  }
}

std::size_t StructuredTraceSink::count(MsgClass c) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.msg_class() == c) ++n;
  }
  return n;
}

std::size_t StructuredTraceSink::count(OpKind op) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.op_kind() == op) ++n;
  }
  return n;
}

std::size_t StructuredTraceSink::count(MsgClass c, OpKind op) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.msg_class() == c && r.op_kind() == op) ++n;
  }
  return n;
}

std::size_t StructuredTraceSink::dropped_count(MsgClass c) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.msg_class() == c && r.dropped()) ++n;
  }
  return n;
}

std::vector<std::uint8_t> StructuredTraceSink::bytes() const {
  linearize();  // serialise oldest-first regardless of ring state
  std::vector<std::uint8_t> out;
  out.reserve(records_.size() * kTraceRecordBytes);
  auto put32 = [&out](std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  };
  auto put64 = [&](std::uint64_t v) {
    put32(static_cast<std::uint32_t>(v));
    put32(static_cast<std::uint32_t>(v >> 32));
  };
  for (const auto& r : records_) {
    put64(static_cast<std::uint64_t>(r.t_ns));
    out.push_back(r.op);
    out.push_back(r.cls);
    out.push_back(r.component);
    out.push_back(r.flags);
    put32(static_cast<std::uint32_t>(r.src));
    put32(static_cast<std::uint32_t>(r.dst_first));
    put32(static_cast<std::uint32_t>(r.dst_count));
    put64(static_cast<std::uint64_t>(r.a));
    put64(static_cast<std::uint64_t>(r.b));
  }
  return out;
}

}  // namespace storm::fabric
