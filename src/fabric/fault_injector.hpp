// FaultInjector middleware: probabilistic drop / delay / duplicate per
// message class, targeted one-shot drops for reproducible
// demonstrations, and a node-scoped silence mode (drop everything
// to/from a node set) so single-message drops and whole-node blackouts
// share one middleware. All randomness comes from one forked simulator
// stream, so two runs with the same seed inject the identical fault
// sequence — and, because the simulation itself is deterministic,
// produce byte-identical structured traces.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/random.hpp"

namespace storm::fabric {

class FaultInjector final : public Middleware {
 public:
  struct ClassPolicy {
    double drop_prob = 0.0;
    double dup_prob = 0.0;
    double delay_prob = 0.0;
    sim::SimTime delay_min{};
    sim::SimTime delay_max{};
  };

  /// `rng` should be forked from the simulation's master stream
  /// (e.g. `sim.rng().fork(salt)`) for whole-run determinism.
  explicit FaultInjector(sim::Rng rng) : rng_(rng) {}

  ClassPolicy& policy(MsgClass c) { return policies_[idx(c)]; }
  const ClassPolicy& policy(MsgClass c) const { return policies_[idx(c)]; }
  void set_policy(MsgClass c, ClassPolicy p) { policies_[idx(c)] = p; }

  /// Arm a targeted drop: the next `count` CommandDeliver envelopes of
  /// class `c` (to `node`, or to any node when node < 0) are lost.
  /// Deterministic — no randomness is consumed.
  void drop_next_delivery(MsgClass c, int node = -1, int count = 1) {
    armed_cls_ = c;
    armed_node_ = node;
    armed_count_ = count;
  }

  // --- node-scoped silence ------------------------------------------------
  /// Drop everything to or from `node`: operations it sources, command
  /// deliveries addressed to it, and any COMPARE-AND-WRITE whose
  /// destination set contains it (an unreachable node cannot
  /// acknowledge, so the conjunction reads "condition not met"). An
  /// XFER whose destinations are silenced in full is dropped; a
  /// multicast that only grazes the silenced set is left intact, since
  /// on a silenced node nothing consumes the delivery anyway.
  /// Deterministic — no randomness is consumed.
  void silence_node(int node) {
    if (node < 0) return;
    if (static_cast<std::size_t>(node) >= silenced_.size()) {
      silenced_.resize(static_cast<std::size_t>(node) + 1, false);
    }
    silenced_[static_cast<std::size_t>(node)] = true;
  }
  void unsilence_node(int node) {
    if (node >= 0 && static_cast<std::size_t>(node) < silenced_.size()) {
      silenced_[static_cast<std::size_t>(node)] = false;
    }
  }
  bool silenced(int node) const {
    return node >= 0 && static_cast<std::size_t>(node) < silenced_.size() &&
           silenced_[static_cast<std::size_t>(node)];
  }
  std::int64_t silence_drops() const { return silence_drops_; }

  // --- asymmetric (one-way) partitions ------------------------------------
  /// Drop traffic sourced by a node in `from` whose delivery targets a
  /// node in `to` — the reverse direction is untouched, modelling a
  /// half-dead link or a NIC that can still transmit but no longer
  /// receives. `classes` restricts the rule to those message classes
  /// (empty = every class). The rule starts enabled; returns an id for
  /// set_one_way_enabled so campaigns can window it. Deterministic —
  /// no randomness is consumed.
  int add_one_way(std::vector<int> from, std::vector<int> to,
                  std::vector<MsgClass> classes = {}) {
    oneway_.push_back(
        OneWay{std::move(from), std::move(to), std::move(classes), true});
    return static_cast<int>(oneway_.size()) - 1;
  }
  void set_one_way_enabled(int id, bool enabled) {
    if (id >= 0 && static_cast<std::size_t>(id) < oneway_.size()) {
      oneway_[static_cast<std::size_t>(id)].enabled = enabled;
    }
  }
  bool one_way_enabled(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < oneway_.size() &&
           oneway_[static_cast<std::size_t>(id)].enabled;
  }
  std::int64_t one_way_drops() const { return oneway_drops_; }

  // --- statistics --------------------------------------------------------
  std::int64_t dropped(MsgClass c) const { return drops_[idx(c)]; }
  std::int64_t duplicated(MsgClass c) const { return dups_[idx(c)]; }
  std::int64_t delayed(MsgClass c) const { return delays_[idx(c)]; }
  std::int64_t total_dropped() const {
    std::int64_t n = 0;
    for (auto v : drops_) n += v;
    return n;
  }

  std::string_view name() const override { return "fault-injector"; }

  void apply(const Envelope& e, Action& a) override {
    // Faults only make sense for operations that cross the network.
    const bool network = e.op == OpKind::Xfer ||
                         e.op == OpKind::CompareAndWrite ||
                         e.op == OpKind::CommandMulticast ||
                         e.op == OpKind::CommandDeliver;
    if (!network) return;

    if (!silenced_.empty() && silence_applies(e)) {
      a.drop = true;
      ++drops_[idx(e.cls())];
      ++silence_drops_;
      return;
    }

    if (armed_count_ > 0 && e.op == OpKind::CommandDeliver &&
        e.cls() == armed_cls_ &&
        (armed_node_ < 0 || e.dsts.first == armed_node_)) {
      --armed_count_;
      a.drop = true;
      ++drops_[idx(e.cls())];
      return;
    }

    if (!oneway_.empty() && one_way_applies(e)) {
      a.drop = true;
      ++drops_[idx(e.cls())];
      ++oneway_drops_;
      return;
    }

    const ClassPolicy& p = policies_[idx(e.cls())];
    if (p.drop_prob > 0.0 && rng_.bernoulli(p.drop_prob)) {
      a.drop = true;
      ++drops_[idx(e.cls())];
      return;  // a dropped message cannot also be delayed or duplicated
    }
    if (p.dup_prob > 0.0 && rng_.bernoulli(p.dup_prob)) {
      ++a.duplicates;
      ++dups_[idx(e.cls())];
    }
    if (p.delay_prob > 0.0 && rng_.bernoulli(p.delay_prob)) {
      const double span =
          (p.delay_max - p.delay_min).to_seconds();
      a.delay += p.delay_min +
                 sim::SimTime::seconds(span > 0.0 ? rng_.uniform(0.0, span)
                                                  : 0.0);
      ++delays_[idx(e.cls())];
    }
  }

 private:
  static constexpr std::size_t idx(MsgClass c) {
    return static_cast<std::size_t>(c);
  }

  bool silence_applies(const Envelope& e) const {
    if (silenced(e.src)) return true;
    if (e.op == OpKind::CommandDeliver) return silenced(e.dsts.first);
    if (e.op == OpKind::CompareAndWrite) {
      for (int n = e.dsts.first; n <= e.dsts.last(); ++n) {
        if (silenced(n)) return true;
      }
      return false;
    }
    if (e.op == OpKind::Xfer && e.dsts.count > 0) {
      for (int n = e.dsts.first; n <= e.dsts.last(); ++n) {
        if (!silenced(n)) return false;
      }
      return true;  // every destination silenced: nothing to deliver
    }
    return false;
  }

  struct OneWay {
    std::vector<int> from;
    std::vector<int> to;
    std::vector<MsgClass> classes;  // empty = every class
    bool enabled = true;
  };

  static bool in_set(const std::vector<int>& set, int node) {
    return std::find(set.begin(), set.end(), node) != set.end();
  }

  bool one_way_applies(const Envelope& e) const {
    for (const OneWay& r : oneway_) {
      if (!r.enabled || !in_set(r.from, e.src)) continue;
      if (!r.classes.empty() &&
          std::find(r.classes.begin(), r.classes.end(), e.cls()) ==
              r.classes.end()) {
        continue;
      }
      // The multicast fan-out leg is left intact: the cut happens on
      // the per-node deliveries, so destinations outside `to` still
      // hear everything.
      if (e.op == OpKind::CommandDeliver) {
        if (in_set(r.to, e.dsts.first)) return true;
      } else if (e.op == OpKind::CompareAndWrite) {
        // A destination that cannot hear us cannot acknowledge; the
        // conjunction over the range reads "condition not met".
        for (int n = e.dsts.first; n <= e.dsts.last(); ++n) {
          if (in_set(r.to, n)) return true;
        }
      } else if (e.op == OpKind::Xfer && e.dsts.count > 0) {
        bool all = true;
        for (int n = e.dsts.first; n <= e.dsts.last(); ++n) {
          if (!in_set(r.to, n)) {
            all = false;
            break;
          }
        }
        if (all) return true;
      }
    }
    return false;
  }

  sim::Rng rng_;
  std::array<ClassPolicy, kMsgClassCount> policies_{};
  std::array<std::int64_t, kMsgClassCount> drops_{};
  std::array<std::int64_t, kMsgClassCount> dups_{};
  std::array<std::int64_t, kMsgClassCount> delays_{};

  MsgClass armed_cls_ = MsgClass::Generic;
  int armed_node_ = -1;
  int armed_count_ = 0;

  std::vector<bool> silenced_;
  std::int64_t silence_drops_ = 0;

  std::vector<OneWay> oneway_;
  std::int64_t oneway_drops_ = 0;
};

}  // namespace storm::fabric
