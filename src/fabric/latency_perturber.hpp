// LatencyPerturber middleware: adds configurable jitter to control-
// plane operations, per message class. Useful for studying the
// management plane's sensitivity to interconnect variance (e.g. how
// much strobe jitter gang scheduling tolerates before timeslots
// smear) without touching the network model itself.
#pragma once

#include <array>

#include "fabric/fabric.hpp"
#include "sim/random.hpp"

namespace storm::fabric {

class LatencyPerturber final : public Middleware {
 public:
  enum class Model : std::uint8_t {
    None = 0,     // no jitter
    Constant,     // base, always
    Uniform,      // base + U[0, spread)
    Exponential,  // base + Exp(mean = spread)
  };

  struct Jitter {
    Model model = Model::None;
    sim::SimTime base{};
    sim::SimTime spread{};
  };

  /// `rng` should be forked from the simulation's master stream.
  explicit LatencyPerturber(sim::Rng rng) : rng_(rng) {}

  void set_jitter(MsgClass c, Jitter j) {
    jitter_[static_cast<std::size_t>(c)] = j;
  }
  const Jitter& jitter(MsgClass c) const {
    return jitter_[static_cast<std::size_t>(c)];
  }

  std::string_view name() const override { return "latency-perturber"; }

  void apply(const Envelope& e, Action& a) override {
    // Perturb only network legs; per-destination deliveries are skipped
    // so a multicast is jittered once, not once per node.
    const bool network = e.op == OpKind::Xfer ||
                         e.op == OpKind::CompareAndWrite ||
                         e.op == OpKind::CommandMulticast;
    if (!network) return;
    const Jitter& j = jitter_[static_cast<std::size_t>(e.cls())];
    switch (j.model) {
      case Model::None:
        return;
      case Model::Constant:
        a.delay += j.base;
        return;
      case Model::Uniform:
        a.delay += j.base + sim::SimTime::seconds(
                                rng_.uniform(0.0, j.spread.to_seconds()));
        return;
      case Model::Exponential:
        a.delay += j.base + sim::SimTime::seconds(
                                rng_.exponential(j.spread.to_seconds()));
        return;
    }
  }

 private:
  sim::Rng rng_;
  std::array<Jitter, kMsgClassCount> jitter_{};
};

}  // namespace storm::fabric
