// The interposable control-plane fabric.
//
// MechanismFabric wraps any mech::Mechanisms and routes every
// XFER-AND-SIGNAL / TEST-EVENT / COMPARE-AND-WRITE — plus the MM→NM
// command multicasts — through an ordered chain of middleware. Each
// middleware inspects a typed Envelope (operation kind, component,
// message class, endpoints) and may accumulate an Action: drop the
// operation, delay it, or duplicate it. The chain is consulted *per
// operation*, so faults, latency perturbations and structured tracing
// can be layered without the dæmons knowing.
//
// With an empty chain the fabric is a strict pass-through: it adds no
// modeled latency and consumes no randomness, so every figure
// reproduction is bit-identical to running against the raw mechanisms.
//
// Fault semantics per operation kind:
//   Xfer              drop = the PUT (and its events) never happens;
//                     delay/duplicate shift or repeat the whole PUT.
//   CompareAndWrite   drop = the query is lost and reads as "condition
//                     not met" (callers already poll/retry); delay adds
//                     latency before the network conditional.
//   CommandMulticast  the wire leg of an MM→NM command; drop loses the
//                     command for *all* destinations.
//   CommandDeliver    one destination's mailbox delivery; drop loses
//                     the command for that node only.
//   TestEvent/WaitEvent/WriteLocal/SignalLocal are local NIC
//                     operations: they are observable by middleware but
//                     fault actions are not applied (a lost local poll
//                     has no physical analogue).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "fabric/message.hpp"
#include "mech/mechanisms.hpp"
#include "sim/simulator.hpp"

namespace storm::fabric {

enum class OpKind : std::uint8_t {
  Xfer = 0,          // XFER-AND-SIGNAL
  TestEvent,         // TEST-EVENT (poll)
  WaitEvent,         // TEST-EVENT (blocking)
  CompareAndWrite,   // COMPARE-AND-WRITE
  WriteLocal,        // local NIC-memory word write
  SignalLocal,       // local NIC event signal
  CommandMulticast,  // wire leg of an MM→NM command multicast
  CommandDeliver,    // per-destination mailbox delivery of a command
  Note,              // component annotation (tracing only)
};
inline constexpr int kOpKindCount = static_cast<int>(OpKind::Note) + 1;

constexpr std::string_view to_string(OpKind op) {
  switch (op) {
    case OpKind::Xfer: return "xfer";
    case OpKind::TestEvent: return "test-ev";
    case OpKind::WaitEvent: return "wait-ev";
    case OpKind::CompareAndWrite: return "caw";
    case OpKind::WriteLocal: return "write-loc";
    case OpKind::SignalLocal: return "signal-loc";
    case OpKind::CommandMulticast: return "cmd-mcast";
    case OpKind::CommandDeliver: return "cmd-deliver";
    case OpKind::Note: return "note";
  }
  return "?";
}

/// Local NIC operations (polls, local writes/signals): observable by
/// middleware, but fault actions are never applied to them and they
/// carry no wire traffic.
constexpr bool is_local_op(OpKind op) {
  return op == OpKind::TestEvent || op == OpKind::WaitEvent ||
         op == OpKind::WriteLocal || op == OpKind::SignalLocal;
}

/// Which dæmon (or helper layer) issued the operation.
enum class Component : std::uint8_t {
  None = 0,      // untyped legacy entry points
  MM,            // Machine Manager
  NM,            // Node Manager
  PL,            // Program Launcher
  FileTransfer,  // binary-distribution protocol
  App,           // application-level traffic
};
inline constexpr int kComponentCount = static_cast<int>(Component::App) + 1;

constexpr std::string_view to_string(Component c) {
  switch (c) {
    case Component::None: return "-";
    case Component::MM: return "mm";
    case Component::NM: return "nm";
    case Component::PL: return "pl";
    case Component::FileTransfer: return "ft";
    case Component::App: return "app";
  }
  return "?";
}

/// One control-plane operation as it crosses the fabric.
struct Envelope {
  OpKind op = OpKind::Note;
  Component component = Component::None;
  ControlMessage msg{};  // cls == Generic for untyped ops
  int src = -1;          // issuing node
  net::NodeRange dsts{0, 0};
  sim::Bytes bytes = 0;  // wire payload size (Xfer / CommandMulticast)
  TraceContext ctx{};    // causal span of the issuing dæmon (0: untraced)

  MsgClass cls() const { return msg.cls; }
};

/// The middleware chain's accumulated verdict for one envelope.
struct Action {
  bool drop = false;
  int duplicates = 0;    // extra copies of one-way operations
  sim::SimTime delay{};  // added before the operation is issued
};

class Middleware {
 public:
  virtual ~Middleware() = default;
  virtual std::string_view name() const = 0;
  /// Inspect `e` and accumulate into `a`. Called in chain order for
  /// every operation crossing the fabric.
  virtual void apply(const Envelope& e, Action& a) = 0;
  /// Called (in chain order) after the whole chain has run, with the
  /// final verdict — the tracing hook. Default: ignore.
  virtual void observe(const Envelope& e, const Action& a) {
    (void)e;
    (void)a;
  }
};

class MechanismFabric final : public mech::Mechanisms {
 public:
  /// Transport for the wire leg of a command multicast (e.g. QsNET
  /// broadcast of one descriptor); awaited before any delivery.
  using WireFn =
      std::function<sim::Task<>(int src, net::NodeRange dsts, sim::Bytes)>;
  /// Mailbox delivery of one command to a contiguous destination
  /// range. With an empty middleware chain a multicast is delivered as
  /// ONE range call (the batched range event); middleware verdicts
  /// split the range into maximal clean runs plus per-node deliveries
  /// for delayed/duplicated destinations. The TraceContext is the
  /// delivery envelope's causal span (default-constructed when the
  /// multicast was untraced).
  using DeliverFn =
      std::function<void(net::NodeRange dsts, const ControlMessage&,
                         TraceContext)>;

  MechanismFabric(sim::Simulator& sim, mech::Mechanisms& inner)
      : sim_(sim), inner_(inner) {}

  // --- middleware chain --------------------------------------------------
  void push(std::shared_ptr<Middleware> mw) { chain_.push_back(std::move(mw)); }
  void clear_middleware() { chain_.clear(); }
  std::size_t middleware_count() const { return chain_.size(); }
  bool chain_empty() const { return chain_.empty(); }

  mech::Mechanisms& inner() { return inner_; }
  sim::Simulator& simulator() { return sim_; }

  // --- typed entry points (the dæmons' API) ------------------------------
  void xfer_and_signal(Component c, const ControlMessage& m, int src,
                       net::NodeRange dsts, sim::Bytes bytes,
                       net::BufferPlace place, net::EventAddr remote_ev,
                       net::EventAddr local_done, TraceContext ctx = {});

  sim::Task<bool> compare_and_write(Component c, const ControlMessage& m,
                                    int src, net::NodeRange dsts,
                                    net::GlobalAddr cmp_addr, net::Compare cmp,
                                    std::int64_t operand,
                                    net::GlobalAddr write_addr,
                                    std::int64_t write_value,
                                    TraceContext ctx = {});

  /// MM→NM command multicast: one wire leg over `wire`, then one
  /// per-destination CommandDeliver envelope feeding `deliver`.
  sim::Task<> multicast_command(Component c, const ControlMessage& m, int src,
                                net::NodeRange dsts, sim::Bytes wire_bytes,
                                WireFn wire, DeliverFn deliver,
                                TraceContext ctx = {});

  /// Structured annotation (e.g. "job completed" on the MM): runs the
  /// chain for observation only; no action is applied.
  void note(Component c, int node, const ControlMessage& m,
            TraceContext ctx = {});

  // --- mech::Mechanisms (untyped pass-through; class = Generic) -----------
  std::string name() const override { return "fabric(" + inner_.name() + ")"; }
  int nodes() const override { return inner_.nodes(); }

  void xfer_and_signal(int src, net::NodeRange dsts, sim::Bytes bytes,
                       net::BufferPlace place, net::EventAddr remote_ev,
                       net::EventAddr local_done) override {
    xfer_and_signal(Component::None, ControlMessage::generic(), src, dsts,
                    bytes, place, remote_ev, local_done);
  }

  bool test_event(int node, net::EventAddr ev) override;
  sim::Task<> wait_event(int node, net::EventAddr ev) override;

  sim::Task<bool> compare_and_write(int src, net::NodeRange dsts,
                                    net::GlobalAddr cmp_addr, net::Compare cmp,
                                    std::int64_t operand,
                                    net::GlobalAddr write_addr,
                                    std::int64_t write_value) override {
    return compare_and_write(Component::None, ControlMessage::generic(), src,
                             dsts, cmp_addr, cmp, operand, write_addr,
                             write_value);
  }

  void write_local(int node, net::GlobalAddr addr,
                   std::int64_t value) override;
  std::int64_t read_local(int node, net::GlobalAddr addr) const override {
    return inner_.read_local(node, addr);
  }
  void signal_local(int node, net::EventAddr ev, int count = 1) override;

  void set_node_failed(int node, bool failed) override {
    inner_.set_node_failed(node, failed);
  }
  bool node_failed(int node) const override {
    return inner_.node_failed(node);
  }

  sim::SimTime caw_latency(int set_nodes) const override {
    return inner_.caw_latency(set_nodes);
  }
  sim::Bandwidth xfer_aggregate_bandwidth(int set_nodes) const override {
    return inner_.xfer_aggregate_bandwidth(set_nodes);
  }

 private:
  /// Run the full chain for `e`; returns the accumulated action.
  Action decide(const Envelope& e);
  /// Run the chain for an operation that only supports observation.
  void observe_only(const Envelope& e);

  sim::Simulator& sim_;
  mech::Mechanisms& inner_;
  std::vector<std::shared_ptr<Middleware>> chain_;
};

}  // namespace storm::fabric
