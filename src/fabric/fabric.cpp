#include "fabric/fabric.hpp"

#include <algorithm>

namespace storm::fabric {

using sim::SimTime;
using sim::Task;

Action MechanismFabric::decide(const Envelope& e) {
  Action a;
  for (auto& mw : chain_) mw->apply(e, a);
  for (auto& mw : chain_) mw->observe(e, a);
  return a;
}

void MechanismFabric::observe_only(const Envelope& e) {
  Action a;
  for (auto& mw : chain_) mw->apply(e, a);
  a = Action{};  // local operations: fault actions are not applied
  for (auto& mw : chain_) mw->observe(e, a);
}

void MechanismFabric::xfer_and_signal(Component c, const ControlMessage& m,
                                      int src, net::NodeRange dsts,
                                      sim::Bytes bytes, net::BufferPlace place,
                                      net::EventAddr remote_ev,
                                      net::EventAddr local_done,
                                      TraceContext ctx) {
  if (chain_.empty()) {
    inner_.xfer_and_signal(src, dsts, bytes, place, remote_ev, local_done);
    return;
  }
  const Action a =
      decide(Envelope{OpKind::Xfer, c, m, src, dsts, bytes, ctx});
  if (a.drop) return;
  const int copies = 1 + std::max(0, a.duplicates);
  auto issue = [this, src, dsts, bytes, place, remote_ev, local_done,
                copies] {
    for (int k = 0; k < copies; ++k) {
      inner_.xfer_and_signal(src, dsts, bytes, place, remote_ev, local_done);
    }
  };
  if (a.delay > SimTime::zero()) {
    sim_.schedule_after(a.delay, issue);
  } else {
    issue();
  }
}

Task<bool> MechanismFabric::compare_and_write(
    Component c, const ControlMessage& m, int src, net::NodeRange dsts,
    net::GlobalAddr cmp_addr, net::Compare cmp, std::int64_t operand,
    net::GlobalAddr write_addr, std::int64_t write_value, TraceContext ctx) {
  if (!chain_.empty()) {
    const Action a =
        decide(Envelope{OpKind::CompareAndWrite, c, m, src, dsts, 0, ctx});
    // A lost query reads as "condition not met": every caller already
    // polls (flow control) or re-checks at the next boundary (MM).
    if (a.drop) co_return false;
    if (a.delay > SimTime::zero()) co_await sim_.delay(a.delay);
  }
  co_return co_await inner_.compare_and_write(src, dsts, cmp_addr, cmp,
                                              operand, write_addr,
                                              write_value);
}

Task<> MechanismFabric::multicast_command(Component c, const ControlMessage& m,
                                          int src, net::NodeRange dsts,
                                          sim::Bytes wire_bytes, WireFn wire,
                                          DeliverFn deliver, TraceContext ctx) {
  Action a;
  if (!chain_.empty()) {
    a = decide(Envelope{OpKind::CommandMulticast, c, m, src, dsts, wire_bytes,
                        ctx});
  }
  if (a.drop) co_return;
  if (a.delay > SimTime::zero()) co_await sim_.delay(a.delay);
  const int copies = 1 + std::max(0, a.duplicates);
  for (int k = 0; k < copies; ++k) {
    co_await wire(src, dsts, wire_bytes);
    if (chain_.empty()) {
      // Fault-free fast path: the whole destination range lands as one
      // batched range delivery — a single callback, not N heap entries.
      deliver(dsts, m, ctx);
      continue;
    }
    // Middleware may perturb individual destinations. Consult the
    // chain per node (observers rely on per-destination envelopes in
    // ascending order), then deliver maximal runs of untouched nodes
    // as ranges. Deciding a run before delivering it is sound: apply/
    // observe never schedule events, so the mailbox-put sequence is
    // unchanged.
    int run_first = dsts.first;
    int run_count = 0;
    auto flush = [&] {
      if (run_count > 0) {
        deliver(net::NodeRange{run_first, run_count}, m, ctx);
      }
      run_count = 0;
    };
    for (int n = dsts.first; n <= dsts.last(); ++n) {
      const Action ad = decide(Envelope{OpKind::CommandDeliver, c, m, src,
                                        net::NodeRange{n, 1}, 0, ctx});
      const bool clean =
          !ad.drop && ad.duplicates <= 0 && ad.delay <= SimTime::zero();
      if (clean) {
        if (run_count == 0) run_first = n;
        ++run_count;
        continue;
      }
      flush();
      if (ad.drop) continue;
      const int ncopies = 1 + std::max(0, ad.duplicates);
      if (ad.delay > SimTime::zero()) {
        sim_.schedule_after(ad.delay, [deliver, n, m, ncopies, ctx] {
          for (int j = 0; j < ncopies; ++j) {
            deliver(net::NodeRange{n, 1}, m, ctx);
          }
        });
      } else {
        for (int j = 0; j < ncopies; ++j) deliver(net::NodeRange{n, 1}, m, ctx);
      }
    }
    flush();
  }
}

void MechanismFabric::note(Component c, int node, const ControlMessage& m,
                           TraceContext ctx) {
  if (chain_.empty()) return;
  observe_only(
      Envelope{OpKind::Note, c, m, node, net::NodeRange{node, 1}, 0, ctx});
}

bool MechanismFabric::test_event(int node, net::EventAddr ev) {
  if (!chain_.empty()) {
    observe_only(Envelope{OpKind::TestEvent, Component::None,
                          ControlMessage::generic(), node,
                          net::NodeRange{node, 1}, 0});
  }
  return inner_.test_event(node, ev);
}

Task<> MechanismFabric::wait_event(int node, net::EventAddr ev) {
  if (!chain_.empty()) {
    observe_only(Envelope{OpKind::WaitEvent, Component::None,
                          ControlMessage::generic(), node,
                          net::NodeRange{node, 1}, 0});
  }
  co_await inner_.wait_event(node, ev);
}

void MechanismFabric::write_local(int node, net::GlobalAddr addr,
                                  std::int64_t value) {
  if (!chain_.empty()) {
    observe_only(Envelope{OpKind::WriteLocal, Component::None,
                          ControlMessage::generic(), node,
                          net::NodeRange{node, 1}, 0});
  }
  inner_.write_local(node, addr, value);
}

void MechanismFabric::signal_local(int node, net::EventAddr ev, int count) {
  if (!chain_.empty()) {
    observe_only(Envelope{OpKind::SignalLocal, Component::None,
                          ControlMessage::generic(), node,
                          net::NodeRange{node, 1}, 0});
  }
  inner_.signal_local(node, ev, count);
}

}  // namespace storm::fabric
