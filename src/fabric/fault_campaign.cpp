#include "fabric/fault_campaign.hpp"

#include <algorithm>

namespace storm::fabric {

using sim::SimTime;

void FaultCampaign::sort_events() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.node < b.node;
                   });
}

FaultCampaign FaultCampaign::seeded(sim::Rng rng, const SeedSpec& spec) {
  FaultCampaign c;
  // Candidate victims: every node not on the protect list.
  std::vector<int> candidates;
  candidates.reserve(static_cast<std::size_t>(spec.nodes));
  for (int n = 0; n < spec.nodes; ++n) {
    if (std::find(spec.protect.begin(), spec.protect.end(), n) ==
        spec.protect.end()) {
      candidates.push_back(n);
    }
  }
  const double span =
      (spec.window_end - spec.window_start).to_seconds();
  const int crashes =
      std::min(spec.crashes, static_cast<int>(candidates.size()));
  for (int i = 0; i < crashes; ++i) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(candidates.size())));
    const int node = candidates[pick];
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    const SimTime at =
        spec.window_start +
        SimTime::seconds(span > 0.0 ? rng.uniform(0.0, span) : 0.0);
    c.crash_node(node, at);
    if (spec.max_downtime > SimTime::zero()) {
      const double down = rng.uniform(spec.min_downtime.to_seconds(),
                                      spec.max_downtime.to_seconds());
      c.recover_node(node, at + SimTime::seconds(down));
    }
  }
  c.sort_events();
  return c;
}

std::shared_ptr<PartitionSimulator> FaultCampaign::arm(sim::Simulator& sim,
                                                       MechanismFabric* fabric,
                                                       CampaignHooks hooks) {
  sort_events();
  // The hooks outlive the lambdas via shared ownership: one campaign
  // armed once may fire long after the FaultCampaign object is gone.
  auto shared = std::make_shared<CampaignHooks>(std::move(hooks));
  for (const Event& ev : events_) {
    // A Fault note lands in the structured trace right before each hook
    // fires, making a recorded run's campaign self-describing: the
    // TraceReplayer reconstructs the schedule from these notes alone.
    switch (ev.kind) {
      case EventKind::CrashNode:
        sim.schedule_at(ev.at, [shared, fabric, node = ev.node] {
          if (fabric != nullptr) {
            fabric->note(Component::None, node,
                         ControlMessage::fault(
                             static_cast<int>(EventKind::CrashNode), node));
          }
          if (shared->crash_node) shared->crash_node(node);
        });
        break;
      case EventKind::RecoverNode:
        sim.schedule_at(ev.at, [shared, fabric, node = ev.node] {
          if (fabric != nullptr) {
            fabric->note(Component::None, node,
                         ControlMessage::fault(
                             static_cast<int>(EventKind::RecoverNode), node));
          }
          if (shared->recover_node) shared->recover_node(node);
        });
        break;
      case EventKind::CrashPrimaryMm:
        sim.schedule_at(ev.at, [shared, fabric] {
          if (fabric != nullptr) {
            fabric->note(
                Component::None, -1,
                ControlMessage::fault(
                    static_cast<int>(EventKind::CrashPrimaryMm), -1));
          }
          if (shared->crash_primary_mm) shared->crash_primary_mm();
        });
        break;
    }
  }
  // Asymmetric windows ride a dedicated FaultInjector whose rules are
  // toggled by scheduled events — no Fault notes (same contract as the
  // PartitionSimulator below: windows are config, not trace events)
  // and no randomness (one-way rules never consult the RNG, so the
  // seed here is inert).
  if (!asym_.empty() && fabric != nullptr) {
    injector_ = std::make_shared<FaultInjector>(sim::Rng{0});
    for (const AsymWindow& w : asym_) {
      const int id = injector_->add_one_way(w.from, w.to, w.classes);
      injector_->set_one_way_enabled(id, false);
      sim.schedule_at(w.start, [inj = injector_, id] {
        inj->set_one_way_enabled(id, true);
      });
      sim.schedule_at(w.end, [inj = injector_, id] {
        inj->set_one_way_enabled(id, false);
      });
    }
    fabric->push(injector_);
  }
  if (partitions_.empty() || fabric == nullptr) return nullptr;
  auto ps = std::make_shared<PartitionSimulator>(sim);
  for (const PartitionWindow& w : partitions_) {
    ps->partition(w.island, w.start, w.end);
  }
  fabric->push(ps);
  return ps;
}

}  // namespace storm::fabric
