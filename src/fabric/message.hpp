// Typed control-plane messages for the STORM management fabric.
//
// The paper expresses every resource-management function as traffic
// over the three mechanisms; this header gives that traffic a *type*.
// Each message class names one control-plane interaction (the strobe
// that switches a timeslot, a heartbeat epoch, a chunk of a binary
// image, a flow-control credit check, a launch/termination report),
// formalising what used to be ad-hoc constants scattered through
// storm/protocol.hpp. Messages are small tagged unions with a compact,
// platform-independent wire encoding, so middleware can classify,
// perturb and trace them without string matching.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "sim/units.hpp"

namespace storm::fabric {

/// Job identifier as carried on the wire (storm::core::JobId is int).
using WireJobId = std::int32_t;

/// Causal trace context carried alongside control-plane traffic: which
/// trace (job launch / control-plane epoch) an operation belongs to and
/// which span caused it. A zero span means "untraced"; the pair rides
/// in fabric::Envelope and in command deliveries so a receiving dæmon
/// can parent its own span on the sender's. Purely observational: the
/// context never changes fabric behaviour or consumes randomness.
struct TraceContext {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  bool valid() const { return span != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// TracedCommand (defined after ControlMessage below) pairs a command
/// with the context of the MM-side span that multicast it, so command
/// handling spans nest under their cause even when the mailbox queues
/// several commands deep.

enum class MsgClass : std::uint8_t {
  Generic = 0,        // untyped traffic (legacy Mechanisms entry points)
  Strobe,             // gang-scheduling timeslot switch
  Heartbeat,          // liveness epoch announcement
  PrepareTransfer,    // arm the chunk receiver for a job
  Launch,             // fork the job's local PEs
  LaunchChunk,        // one fragment of the binary image
  FlowCredit,         // flow-control credit query (COMPARE-AND-WRITE)
  LaunchReport,       // "all local PEs forked" query
  TerminationReport,  // "all local PEs exited" query
  Kill,               // cancel one incarnation of a job (recovery path)
  Fault,              // fault-campaign event announcement (replay anchor)
  Repl,               // MM replication traffic (append/ack/lease/steal)
};
inline constexpr int kMsgClassCount = static_cast<int>(MsgClass::Repl) + 1;

constexpr std::string_view to_string(MsgClass c) {
  switch (c) {
    case MsgClass::Generic: return "generic";
    case MsgClass::Strobe: return "strobe";
    case MsgClass::Heartbeat: return "heartbeat";
    case MsgClass::PrepareTransfer: return "prepare";
    case MsgClass::Launch: return "launch";
    case MsgClass::LaunchChunk: return "chunk";
    case MsgClass::FlowCredit: return "credit";
    case MsgClass::LaunchReport: return "launch-rep";
    case MsgClass::TerminationReport: return "term-rep";
    case MsgClass::Kill: return "kill";
    case MsgClass::Fault: return "fault";
    case MsgClass::Repl: return "repl";
  }
  return "?";
}

// --- per-class payloads (all trivially copyable) --------------------------

struct StrobePayload {
  std::int32_t row = 0;  // Ousterhout-matrix row to enact
};
struct HeartbeatPayload {
  std::int64_t epoch = 0;
};
struct PrepareTransferPayload {
  WireJobId job = -1;
  std::int32_t chunks = 0;
  std::int64_t chunk_bytes = 0;
  std::int32_t incarnation = 0;
};
struct LaunchPayload {
  WireJobId job = -1;
  std::int32_t incarnation = 0;
};
struct LaunchChunkPayload {
  WireJobId job = -1;
  std::int32_t index = 0;  // chunk sequence number
  std::int64_t bytes = 0;
};
struct FlowCreditPayload {
  WireJobId job = -1;
  std::int32_t through_chunk = 0;  // every node must have written this many
};
struct LaunchReportPayload {
  WireJobId job = -1;
};
struct TerminationReportPayload {
  WireJobId job = -1;
};
struct KillPayload {
  WireJobId job = -1;
  std::int32_t incarnation = 0;  // only this incarnation is cancelled
};
struct FaultPayload {
  std::int32_t kind = 0;  // FaultCampaign::EventKind
  std::int32_t node = -1;  // victim node (-1: the primary MM)
};
struct ReplPayload {
  // verb (ReplVerb) in the low 8 bits, sender replica rank in the next
  // 8 — NM mailboxes deliver a bare ControlMessage, so the sender
  // identity has to ride in the payload.
  std::int32_t verb_from = 0;
  std::int32_t term = 0;      // leader term the message speaks for
  std::int32_t index = 0;     // log index (append) / match index (ack)
  std::int32_t kind_job = 0;  // entry kind + job id + entry term, packed
  std::int64_t args = 0;      // verb-specific argument word
};

/// A control-plane message: class tag + payload union. 32 bytes in
/// memory; `encode()` produces the compact wire image (tag byte plus
/// only the payload fields the class actually uses).
struct ControlMessage {
  MsgClass cls = MsgClass::Generic;

  union Payload {
    StrobePayload strobe;
    HeartbeatPayload heartbeat;
    PrepareTransferPayload prepare;
    LaunchPayload launch;
    LaunchChunkPayload chunk;
    FlowCreditPayload credit;
    LaunchReportPayload launch_report;
    TerminationReportPayload termination;
    KillPayload kill;
    FaultPayload fault;
    ReplPayload repl;
    constexpr Payload() : heartbeat{} {}
  } u{};

  // --- named constructors ------------------------------------------------
  static constexpr ControlMessage generic() { return ControlMessage{}; }
  static constexpr ControlMessage strobe(int row) {
    ControlMessage m;
    m.cls = MsgClass::Strobe;
    m.u.strobe = StrobePayload{row};
    return m;
  }
  static constexpr ControlMessage heartbeat(std::int64_t epoch) {
    ControlMessage m;
    m.cls = MsgClass::Heartbeat;
    m.u.heartbeat = HeartbeatPayload{epoch};
    return m;
  }
  static constexpr ControlMessage prepare_transfer(WireJobId job, int chunks,
                                                   sim::Bytes chunk_bytes,
                                                   int incarnation = 0) {
    ControlMessage m;
    m.cls = MsgClass::PrepareTransfer;
    m.u.prepare = PrepareTransferPayload{job, chunks, chunk_bytes, incarnation};
    return m;
  }
  static constexpr ControlMessage launch(WireJobId job, int incarnation = 0) {
    ControlMessage m;
    m.cls = MsgClass::Launch;
    m.u.launch = LaunchPayload{job, incarnation};
    return m;
  }
  static constexpr ControlMessage launch_chunk(WireJobId job, int index,
                                               sim::Bytes bytes) {
    ControlMessage m;
    m.cls = MsgClass::LaunchChunk;
    m.u.chunk = LaunchChunkPayload{job, index, bytes};
    return m;
  }
  static constexpr ControlMessage flow_credit(WireJobId job,
                                              int through_chunk) {
    ControlMessage m;
    m.cls = MsgClass::FlowCredit;
    m.u.credit = FlowCreditPayload{job, through_chunk};
    return m;
  }
  static constexpr ControlMessage launch_report(WireJobId job) {
    ControlMessage m;
    m.cls = MsgClass::LaunchReport;
    m.u.launch_report = LaunchReportPayload{job};
    return m;
  }
  static constexpr ControlMessage termination_report(WireJobId job) {
    ControlMessage m;
    m.cls = MsgClass::TerminationReport;
    m.u.termination = TerminationReportPayload{job};
    return m;
  }
  static constexpr ControlMessage kill(WireJobId job, int incarnation) {
    ControlMessage m;
    m.cls = MsgClass::Kill;
    m.u.kill = KillPayload{job, incarnation};
    return m;
  }
  static constexpr ControlMessage fault(int kind, int node) {
    ControlMessage m;
    m.cls = MsgClass::Fault;
    m.u.fault = FaultPayload{kind, node};
    return m;
  }
  static constexpr ControlMessage repl(std::int32_t verb_from,
                                       std::int32_t term, std::int32_t index,
                                       std::int32_t kind_job,
                                       std::int64_t args) {
    ControlMessage m;
    m.cls = MsgClass::Repl;
    m.u.repl = ReplPayload{verb_from, term, index, kind_job, args};
    return m;
  }

  // --- trace summary -----------------------------------------------------
  /// Two 64-bit words summarising the payload for fixed-width trace
  /// records: (a, b) = (job-or-row-or-epoch, secondary quantity).
  constexpr std::int64_t word_a() const {
    switch (cls) {
      case MsgClass::Generic: return 0;
      case MsgClass::Strobe: return u.strobe.row;
      case MsgClass::Heartbeat: return u.heartbeat.epoch;
      case MsgClass::PrepareTransfer: return u.prepare.job;
      case MsgClass::Launch: return u.launch.job;
      case MsgClass::LaunchChunk: return u.chunk.job;
      case MsgClass::FlowCredit: return u.credit.job;
      case MsgClass::LaunchReport: return u.launch_report.job;
      case MsgClass::TerminationReport: return u.termination.job;
      case MsgClass::Kill: return u.kill.job;
      case MsgClass::Fault: return u.fault.kind;
      case MsgClass::Repl: return u.repl.term;
    }
    return 0;
  }
  constexpr std::int64_t word_b() const {
    switch (cls) {
      case MsgClass::PrepareTransfer: return u.prepare.chunks;
      case MsgClass::Launch: return u.launch.incarnation;
      case MsgClass::LaunchChunk: return u.chunk.index;
      case MsgClass::FlowCredit: return u.credit.through_chunk;
      case MsgClass::Kill: return u.kill.incarnation;
      case MsgClass::Fault: return u.fault.node;
      case MsgClass::Repl: return u.repl.index;
      default: return 0;
    }
  }

  // --- compact wire encoding --------------------------------------------
  /// Upper bound on any encoded message (tag + largest payload).
  static constexpr std::size_t kMaxWireBytes = 25;
  using WireImage = std::array<std::uint8_t, kMaxWireBytes>;

  /// Encoded size of a message of class `c` (tag byte + used fields).
  static constexpr std::size_t wire_size(MsgClass c) {
    switch (c) {
      case MsgClass::Generic: return 1;
      case MsgClass::Strobe: return 1 + 4;
      case MsgClass::Heartbeat: return 1 + 8;
      case MsgClass::PrepareTransfer: return 1 + 4 + 4 + 8 + 4;
      case MsgClass::Launch: return 1 + 4 + 4;
      case MsgClass::LaunchChunk: return 1 + 4 + 4 + 8;
      case MsgClass::FlowCredit: return 1 + 4 + 4;
      case MsgClass::LaunchReport: return 1 + 4;
      case MsgClass::TerminationReport: return 1 + 4;
      case MsgClass::Kill: return 1 + 4 + 4;
      case MsgClass::Fault: return 1 + 4 + 4;
      case MsgClass::Repl: return 1 + 4 + 4 + 4 + 4 + 8;
    }
    return 1;
  }
  std::size_t wire_size() const { return wire_size(cls); }

  /// Serialise into `out` (little-endian, fields in declaration order).
  /// Returns the number of bytes written; bytes past it are zeroed.
  std::size_t encode(WireImage& out) const;
  /// Inverse of encode(). `n` must be >= wire_size of the tag byte.
  static ControlMessage decode(const std::uint8_t* data, std::size_t n);
};

static_assert(sizeof(ControlMessage) <= 32,
              "control messages must stay one small cache-line fraction");

struct TracedCommand {
  ControlMessage msg{};
  TraceContext ctx{};
};

namespace detail {
inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}
}  // namespace detail

inline std::size_t ControlMessage::encode(WireImage& out) const {
  using namespace detail;
  out.fill(0);
  out[0] = static_cast<std::uint8_t>(cls);
  std::uint8_t* p = out.data() + 1;
  switch (cls) {
    case MsgClass::Generic:
      break;
    case MsgClass::Strobe:
      put_u32(p, static_cast<std::uint32_t>(u.strobe.row));
      break;
    case MsgClass::Heartbeat:
      put_u64(p, static_cast<std::uint64_t>(u.heartbeat.epoch));
      break;
    case MsgClass::PrepareTransfer:
      put_u32(p, static_cast<std::uint32_t>(u.prepare.job));
      put_u32(p + 4, static_cast<std::uint32_t>(u.prepare.chunks));
      put_u64(p + 8, static_cast<std::uint64_t>(u.prepare.chunk_bytes));
      put_u32(p + 16, static_cast<std::uint32_t>(u.prepare.incarnation));
      break;
    case MsgClass::Launch:
      put_u32(p, static_cast<std::uint32_t>(u.launch.job));
      put_u32(p + 4, static_cast<std::uint32_t>(u.launch.incarnation));
      break;
    case MsgClass::LaunchChunk:
      put_u32(p, static_cast<std::uint32_t>(u.chunk.job));
      put_u32(p + 4, static_cast<std::uint32_t>(u.chunk.index));
      put_u64(p + 8, static_cast<std::uint64_t>(u.chunk.bytes));
      break;
    case MsgClass::FlowCredit:
      put_u32(p, static_cast<std::uint32_t>(u.credit.job));
      put_u32(p + 4, static_cast<std::uint32_t>(u.credit.through_chunk));
      break;
    case MsgClass::LaunchReport:
      put_u32(p, static_cast<std::uint32_t>(u.launch_report.job));
      break;
    case MsgClass::TerminationReport:
      put_u32(p, static_cast<std::uint32_t>(u.termination.job));
      break;
    case MsgClass::Kill:
      put_u32(p, static_cast<std::uint32_t>(u.kill.job));
      put_u32(p + 4, static_cast<std::uint32_t>(u.kill.incarnation));
      break;
    case MsgClass::Fault:
      put_u32(p, static_cast<std::uint32_t>(u.fault.kind));
      put_u32(p + 4, static_cast<std::uint32_t>(u.fault.node));
      break;
    case MsgClass::Repl:
      put_u32(p, static_cast<std::uint32_t>(u.repl.verb_from));
      put_u32(p + 4, static_cast<std::uint32_t>(u.repl.term));
      put_u32(p + 8, static_cast<std::uint32_t>(u.repl.index));
      put_u32(p + 12, static_cast<std::uint32_t>(u.repl.kind_job));
      put_u64(p + 16, static_cast<std::uint64_t>(u.repl.args));
      break;
  }
  return wire_size();
}

inline ControlMessage ControlMessage::decode(const std::uint8_t* data,
                                             std::size_t n) {
  using namespace detail;
  assert(n >= 1);
  const auto cls = static_cast<MsgClass>(data[0]);
  assert(n >= wire_size(cls) && "truncated control message");
  (void)n;
  const std::uint8_t* p = data + 1;
  switch (cls) {
    case MsgClass::Generic:
      return generic();
    case MsgClass::Strobe:
      return strobe(static_cast<std::int32_t>(get_u32(p)));
    case MsgClass::Heartbeat:
      return heartbeat(static_cast<std::int64_t>(get_u64(p)));
    case MsgClass::PrepareTransfer:
      return prepare_transfer(static_cast<WireJobId>(get_u32(p)),
                              static_cast<std::int32_t>(get_u32(p + 4)),
                              static_cast<sim::Bytes>(get_u64(p + 8)),
                              static_cast<std::int32_t>(get_u32(p + 16)));
    case MsgClass::Launch:
      return launch(static_cast<WireJobId>(get_u32(p)),
                    static_cast<std::int32_t>(get_u32(p + 4)));
    case MsgClass::LaunchChunk:
      return launch_chunk(static_cast<WireJobId>(get_u32(p)),
                          static_cast<std::int32_t>(get_u32(p + 4)),
                          static_cast<sim::Bytes>(get_u64(p + 8)));
    case MsgClass::FlowCredit:
      return flow_credit(static_cast<WireJobId>(get_u32(p)),
                         static_cast<std::int32_t>(get_u32(p + 4)));
    case MsgClass::LaunchReport:
      return launch_report(static_cast<WireJobId>(get_u32(p)));
    case MsgClass::TerminationReport:
      return termination_report(static_cast<WireJobId>(get_u32(p)));
    case MsgClass::Kill:
      return kill(static_cast<WireJobId>(get_u32(p)),
                  static_cast<std::int32_t>(get_u32(p + 4)));
    case MsgClass::Fault:
      return fault(static_cast<std::int32_t>(get_u32(p)),
                   static_cast<std::int32_t>(get_u32(p + 4)));
    case MsgClass::Repl:
      return repl(static_cast<std::int32_t>(get_u32(p)),
                  static_cast<std::int32_t>(get_u32(p + 4)),
                  static_cast<std::int32_t>(get_u32(p + 8)),
                  static_cast<std::int32_t>(get_u32(p + 12)),
                  static_cast<std::int64_t>(get_u64(p + 16)));
  }
  return generic();
}

}  // namespace storm::fabric
