// Baseline job-launching systems (Section 5.1, Tables 6-7, Fig. 11).
//
// Each comparator is implemented as an actual simulated protocol on
// the DES — a serial remote-shell loop, a master/slave request-reply
// scheme with reply serialisation (GLUnix), concurrent demand paging
// from one NFS server, and store-and-forward distribution trees
// (Cplant, BProc) — with per-stage costs fitted to the measurements
// the paper cites:
//
//   rsh     90 s   minimal job, 95 nodes        (t = 0.934 n + 1.266)
//   RMS     5.9 s  12 MB job,   64 nodes        (t = 0.077 n + 1.092)
//   GLUnix  1.3 s  minimal job, 95 nodes        (t = 0.012 n + 0.228)
//   Cplant  20 s   12 MB job,  1010 nodes       (t = 1.379 lg n + 6.177)
//   BProc   2.7 s  12 MB job,  100 nodes        (t = 0.413 lg n - 0.084)
//
// STORM itself is the full storm::core::Cluster; these baselines model
// only what each system's launch path algorithmically does, which is
// what the paper's comparison is about (linear vs logarithmic vs
// hardware-collective scaling).
#pragma once

#include <string>

#include "node/filesystem.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace storm::baselines {

struct LaunchOutcome {
  sim::SimTime total{};
};

/// Serial `rsh`-in-a-shell-script launch: one connection + remote
/// spawn per node, strictly sequential from the master.
struct RshLauncher {
  sim::SimTime per_node_cost = sim::SimTime::millis(934);
  sim::SimTime setup = sim::SimTime::millis(1266);
  LaunchOutcome launch(sim::Simulator& sim, int nodes) const;
};

/// RMS (Quadrics' resource manager of the era): daemon-based but with
/// serialised per-node work on the management node.
struct RmsLauncher {
  sim::SimTime per_node_cost = sim::SimTime::millis(77);
  sim::SimTime setup = sim::SimTime::millis(1092);
  LaunchOutcome launch(sim::Simulator& sim, int nodes) const;
};

/// GLUnix: master multicasts a run request, slaves reply; replies
/// collide with subsequent requests and serialise at the master.
struct GlunixLauncher {
  sim::SimTime per_reply_cost = sim::SimTime::millis(12);
  sim::SimTime setup = sim::SimTime::millis(228);
  LaunchOutcome launch(sim::Simulator& sim, int nodes) const;
};

/// Demand paging of the binary from a shared NFS filesystem — what
/// "distribute the executable via a globally mounted filesystem"
/// costs. All nodes fault the image in concurrently through one
/// server (nonscalable by construction).
struct NfsDemandPageLauncher {
  sim::Bandwidth server_capacity = sim::Bandwidth::mb_per_s(90);
  sim::Bandwidth per_client_cap = sim::Bandwidth::mb_per_s(11.2);
  sim::SimTime per_node_spawn = sim::SimTime::millis(50);
  LaunchOutcome launch(sim::Simulator& sim, int nodes,
                       sim::Bytes binary) const;
};

/// Cplant-style logarithmic fan-out: the image is pushed down a
/// binary tree, written to local storage at each level before
/// forwarding (store-and-forward).
struct CplantTreeLauncher {
  int fanout = 2;
  sim::Bandwidth per_hop_bandwidth = sim::Bandwidth::mb_per_s(10.0);
  sim::SimTime per_level_overhead = sim::SimTime::millis(120);
  sim::SimTime setup = sim::SimTime::millis(6050);
  LaunchOutcome launch(sim::Simulator& sim, int nodes,
                       sim::Bytes binary) const;
};

/// BProc-style in-memory process replication down a tree: no
/// filesystem activity, just memory-to-memory migration per level.
struct BprocTreeLauncher {
  int fanout = 2;
  sim::Bandwidth per_hop_bandwidth = sim::Bandwidth::mb_per_s(30.0);
  sim::SimTime per_level_overhead = sim::SimTime::millis(13);
  LaunchOutcome launch(sim::Simulator& sim, int nodes,
                       sim::Bytes binary) const;
};

}  // namespace storm::baselines
