// Header-only models; this TU anchors the library target.
#include "baselines/gang_models.hpp"
