#include "baselines/launchers.hpp"

#include <algorithm>
#include <cmath>

#include "sim/resources.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace storm::baselines {

using sim::Bandwidth;
using sim::Bytes;
using sim::SimTime;
using sim::Task;

namespace {

/// Run a root task to completion and return the elapsed simulated time.
Task<> flag_when_done(Task<> inner, bool* flag) {
  co_await std::move(inner);
  *flag = true;
}

SimTime run_to_completion(sim::Simulator& sim, Task<> task) {
  const SimTime start = sim.now();
  bool done = false;
  sim.spawn(flag_when_done(std::move(task), &done));
  while (!done && sim.step()) {
  }
  return sim.now() - start;
}

int tree_depth(int nodes, int fanout) {
  int depth = 0;
  long long reach = 1;
  while (reach < nodes) {
    reach *= fanout;
    ++depth;
  }
  return depth;
}

/// Serial master-side loop common to rsh, RMS and GLUnix: a fixed
/// setup plus one serialised unit of master work per node.
Task<> serial_master_protocol(sim::Simulator* s, SimTime setup,
                              SimTime per_node, int nodes) {
  co_await s->delay(setup);
  for (int i = 0; i < nodes; ++i) co_await s->delay(per_node);
}

struct NfsSharedState {
  sim::SharedBandwidth server;
  sim::WaitGroup wg;
};

Task<> nfs_client(sim::Simulator* s, const NfsDemandPageLauncher* self,
                  NfsSharedState* st, Bytes bytes) {
  const SimTime t0 = s->now();
  co_await st->server.transfer(bytes);
  // Per-client protocol cap: one stream cannot exceed it even on an
  // idle server.
  const SimTime client_floor = self->per_client_cap.time_for(bytes);
  const SimTime elapsed = s->now() - t0;
  if (elapsed < client_floor) co_await s->delay(client_floor - elapsed);
  co_await s->delay(self->per_node_spawn);
  st->wg.done();
}

Task<> nfs_protocol(sim::Simulator* s, const NfsDemandPageLauncher* self,
                    int nodes, Bytes bytes) {
  NfsSharedState st{sim::SharedBandwidth(*s, self->server_capacity, "nfs"),
                    sim::WaitGroup(*s)};
  for (int i = 0; i < nodes; ++i) {
    st.wg.add();
    s->spawn(nfs_client(s, self, &st, bytes));
  }
  co_await st.wg.wait();
}

/// Store-and-forward tree distribution: every level receives the full
/// image and forwards it (local write / migration cost folded into the
/// per-level overhead and hop bandwidth).
Task<> tree_protocol(sim::Simulator* s, SimTime setup, Bandwidth hop_bw,
                     SimTime per_level, int fanout, int nodes, Bytes bytes) {
  co_await s->delay(setup);
  const int depth = tree_depth(nodes, fanout);
  for (int level = 0; level < depth; ++level) {
    co_await s->delay(hop_bw.time_for(bytes) + per_level);
  }
}

}  // namespace

LaunchOutcome RshLauncher::launch(sim::Simulator& sim, int nodes) const {
  return {run_to_completion(
      sim, serial_master_protocol(&sim, setup, per_node_cost, nodes))};
}

LaunchOutcome RmsLauncher::launch(sim::Simulator& sim, int nodes) const {
  return {run_to_completion(
      sim, serial_master_protocol(&sim, setup, per_node_cost, nodes))};
}

LaunchOutcome GlunixLauncher::launch(sim::Simulator& sim, int nodes) const {
  // The run request reaches the slaves quickly, but their replies
  // serialise at the master and collide with follow-up requests — the
  // effect the GLUnix paper reports beyond ~32 nodes.
  return {run_to_completion(
      sim, serial_master_protocol(&sim, setup, per_reply_cost, nodes))};
}

LaunchOutcome NfsDemandPageLauncher::launch(sim::Simulator& sim, int nodes,
                                            Bytes binary) const {
  return {run_to_completion(sim, nfs_protocol(&sim, this, nodes, binary))};
}

LaunchOutcome CplantTreeLauncher::launch(sim::Simulator& sim, int nodes,
                                         Bytes binary) const {
  return {run_to_completion(
      sim, tree_protocol(&sim, setup, per_hop_bandwidth, per_level_overhead,
                         fanout, nodes, binary))};
}

LaunchOutcome BprocTreeLauncher::launch(sim::Simulator& sim, int nodes,
                                        Bytes binary) const {
  return {run_to_completion(
      sim, tree_protocol(&sim, SimTime::zero(), per_hop_bandwidth,
                         per_level_overhead, fanout, nodes, binary))};
}

}  // namespace storm::baselines
