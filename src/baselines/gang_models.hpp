// Gang-scheduler overhead models for the Table 8 comparison.
//
// The paper compares the minimal *feasible* scheduling quantum — the
// shortest quantum at which application slowdown stays at or below
// ~2% — across RMS, SCore-D, and STORM:
//
//   RMS      30,000 ms on 15 nodes (1.8% slowdown)   [15]
//   SCore-D     100 ms on 64 nodes (2%   slowdown)   [21]
//   STORM         2 ms on 64 nodes (no observable)
//
// Each comparator is reduced to the per-quantum overhead its
// context-switch machinery imposes on the applications, because
// slowdown(q) = overhead / q once the quantum dominates. RMS swaps
// gang state through the kernel with second-scale cost; SCore-D
// freezes the Myrinet network into a quiescent state, saves and
// restores global communication state (~2 ms on 64 nodes); STORM
// switches without network quiescence, so only the local context
// switch and cache refill remain.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace storm::baselines {

struct GangOverheadModel {
  std::string name;
  /// Per-quantum, per-node-set overhead experienced by the gang.
  sim::SimTime fixed_overhead;
  /// Additional per-node component (log for tree-coordinated systems
  /// would be more precise; linear-in-log is below the noise here).
  sim::SimTime per_node_overhead;

  sim::SimTime overhead(int nodes) const {
    return fixed_overhead + per_node_overhead * nodes;
  }

  /// Application slowdown at quantum `q` on `nodes` nodes.
  double slowdown(sim::SimTime q, int nodes) const {
    return overhead(nodes).to_seconds() / q.to_seconds();
  }

  /// Minimal quantum keeping slowdown at or below `target` (e.g. 0.02).
  sim::SimTime min_feasible_quantum(double target, int nodes) const {
    return sim::SimTime::seconds(overhead(nodes).to_seconds() / target);
  }

  static GangOverheadModel rms() {
    // 1.8% at 30 s on 15 nodes -> ~540 ms of overhead per quantum.
    return {"RMS", sim::SimTime::millis(540), sim::SimTime::zero()};
  }
  static GangOverheadModel score_d() {
    // 2% at 100 ms on 64 nodes -> ~2 ms per quantum (network
    // quiescence + global state save/restore via PM).
    return {"SCore-D", sim::SimTime::millis(2), sim::SimTime::zero()};
  }
  static GangOverheadModel storm() {
    // Local multi-context-switch only: context switch + cache refill
    // per PE, enacted in parallel across the machine (~40 us).
    return {"STORM", sim::SimTime::us(40), sim::SimTime::zero()};
  }
};

}  // namespace storm::baselines
