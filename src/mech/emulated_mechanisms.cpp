#include "mech/emulated_mechanisms.hpp"

#include <cassert>
#include <cmath>

namespace storm::mech {

using sim::SimTime;
using sim::Task;

EmulatedMechanisms::EmulatedMechanisms(sim::Simulator& sim, int nodes,
                                       EmulationParams params)
    : sim_(sim),
      nodes_(nodes),
      params_(std::move(params)),
      words_(nodes),
      events_(nodes),
      failed_(nodes, false) {
  assert(nodes >= 1);
  assert(params_.fanout >= 2);
}

int EmulatedMechanisms::tree_depth(int set_nodes) const {
  if (set_nodes <= 1) return 1;
  int depth = 0;
  long long reach = 1;
  while (reach < set_nodes) {
    reach *= params_.fanout;
    ++depth;
  }
  return depth;
}

void EmulatedMechanisms::xfer_and_signal(int src, NodeRange dsts,
                                         sim::Bytes bytes, BufferPlace place,
                                         EventAddr remote_ev,
                                         EventAddr local_done) {
  (void)place;  // the emulated networks have no NIC-resident buffers
  sim_.spawn(do_xfer(src, dsts, bytes, remote_ev, local_done));
}

Task<> EmulatedMechanisms::do_xfer(int src, NodeRange dsts, sim::Bytes bytes,
                                   EventAddr remote_ev, EventAddr local_done) {
  if (failed_[src]) co_return;  // a dead source injects nothing
  const int depth = tree_depth(dsts.count);
  // Store-and-forward tree: the pipeline fills over `depth` levels,
  // then streams at p2p_bandwidth / fanout (each parent serially
  // feeds its children).
  const sim::Bandwidth per_node =
      params_.p2p_bandwidth / static_cast<double>(params_.fanout);
  const SimTime fill = params_.hop_latency * depth;
  SimTime stream = per_node.time_for(bytes);
  if (params_.per_byte_host_overhead > SimTime::zero()) {
    stream += params_.per_byte_host_overhead * bytes;
  }
  co_await sim_.delay(fill + stream);
  if (remote_ev != kNoEvent) {
    for (int n = dsts.first; n <= dsts.last(); ++n) {
      if (failed_[n]) continue;  // delivery dropped on crashed nodes
      signal_local(n, remote_ev);
    }
  }
  if (local_done != kNoEvent) signal_local(src, local_done);
}

bool EmulatedMechanisms::test_event(int node, EventAddr ev) {
  return event_sem(node, ev).try_acquire();
}

Task<> EmulatedMechanisms::wait_event(int node, EventAddr ev) {
  co_await event_sem(node, ev).acquire();
}

Task<bool> EmulatedMechanisms::compare_and_write(
    int src, NodeRange dsts, GlobalAddr cmp_addr, Compare cmp,
    std::int64_t operand, GlobalAddr write_addr, std::int64_t write_value) {
  (void)src;
  // Fan-out of the request and combine of the verdicts.
  co_await sim_.delay(caw_latency(dsts.count));
  bool ok = true;
  for (int n = dsts.first; n <= dsts.last(); ++n) {
    // A crashed node never acknowledges: the conjunction fails.
    if (failed_[n] || !net::compare(read_local(n, cmp_addr), cmp, operand)) {
      ok = false;
      break;
    }
  }
  if (ok && write_addr != kNoWrite) {
    // The write piggybacks on a second fan-out.
    co_await sim_.delay(params_.hop_latency * tree_depth(dsts.count));
    for (int n = dsts.first; n <= dsts.last(); ++n) {
      words_[n][write_addr] = write_value;
    }
  }
  co_return ok;
}

void EmulatedMechanisms::signal_local(int node, EventAddr ev, int count) {
  if (failed_[node]) return;  // a dead NIC discards local events
  event_sem(node, ev).release(static_cast<std::size_t>(count));
}

void EmulatedMechanisms::set_node_failed(int node, bool failed) {
  assert(node >= 0 && node < nodes_);
  failed_[node] = failed;
  if (!failed) words_[node].clear();  // recovery: clean slate
}

sim::Semaphore& EmulatedMechanisms::event_sem(int node, EventAddr ev) {
  auto& slot = events_[node][ev];
  if (!slot) slot = std::make_unique<sim::Semaphore>(sim_, 0);
  return *slot;
}

}  // namespace storm::mech
