// The STORM mechanisms (Section 2.2 of the paper): the entire
// resource-management system is written against these three
// operations, so porting STORM to a new interconnect means
// implementing exactly this interface.
//
//   XFER-AND-SIGNAL  PUT a block of data to the global memory of a
//                    set of nodes; optionally signal a local and/or a
//                    remote event on completion. Non-blocking; atomic
//                    (all nodes or none); sequentially consistent.
//   TEST-EVENT       Poll a local event; optionally block until
//                    signalled.
//   COMPARE-AND-WRITE  Compare a global variable on a set of nodes to
//                    a local value (>=, <, =, !=); if the condition
//                    holds on ALL nodes, optionally assign a new value
//                    to a (possibly different) global variable.
//                    Blocking; sequentially consistent.
//
// Two implementations are provided, matching the paper's discussion:
//  * QsNetMechanisms — 1:1 mapping onto QsNET hardware primitives
//    (hardware multicast, network conditionals, remote events).
//  * EmulatedMechanisms — logarithmic-time software trees over
//    point-to-point messaging, parameterised for Gigabit Ethernet,
//    Myrinet and InfiniBand (Table 5).
#pragma once

#include <cstdint>
#include <string>

#include "net/qsnet.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace storm::mech {

using net::BufferPlace;
using net::Compare;
using net::EventAddr;
using net::GlobalAddr;
using net::NodeRange;

/// Sentinel for "no event to signal".
inline constexpr EventAddr kNoEvent = -1;
/// Sentinel for "no write" in COMPARE-AND-WRITE.
inline constexpr GlobalAddr kNoWrite = -1;

class Mechanisms {
 public:
  virtual ~Mechanisms() = default;

  virtual std::string name() const = 0;
  virtual int nodes() const = 0;

  // --- XFER-AND-SIGNAL -------------------------------------------------
  /// Non-blocking PUT of `bytes` from `src` to all nodes in `dsts`.
  /// On delivery, signals `remote_ev` on every destination (unless
  /// kNoEvent) and `local_done` on the source (unless kNoEvent) —
  /// TEST-EVENT on `local_done` is the only way to observe completion.
  virtual void xfer_and_signal(int src, NodeRange dsts, sim::Bytes bytes,
                               BufferPlace place, EventAddr remote_ev,
                               EventAddr local_done) = 0;

  // --- TEST-EVENT ------------------------------------------------------
  /// Poll: true consumes one pending signal.
  virtual bool test_event(int node, EventAddr ev) = 0;
  /// Block until signalled (consumes one signal).
  virtual sim::Task<> wait_event(int node, EventAddr ev) = 0;

  // --- COMPARE-AND-WRITE -----------------------------------------------
  /// Returns the conjunction of `global[cmp_addr] cmp operand` over
  /// `dsts`; when true and `write_addr != kNoWrite`, atomically writes
  /// `write_value` to `global[write_addr]` on every node in the set.
  virtual sim::Task<bool> compare_and_write(int src, NodeRange dsts,
                                            GlobalAddr cmp_addr, Compare cmp,
                                            std::int64_t operand,
                                            GlobalAddr write_addr,
                                            std::int64_t write_value) = 0;

  // --- local NIC-memory access (no network traffic) ---------------------
  virtual void write_local(int node, GlobalAddr addr, std::int64_t value) = 0;
  virtual std::int64_t read_local(int node, GlobalAddr addr) const = 0;
  virtual void signal_local(int node, EventAddr ev, int count = 1) = 0;

  // --- node crash / recovery ---------------------------------------------
  /// Crash semantics (Section 4's failure model): a failed node stops
  /// acknowledging COMPARE-AND-WRITE (any set containing it reads
  /// "condition not met"), XFER-AND-SIGNAL deliveries to it are
  /// dropped, and local writes/signals on it are silently discarded.
  /// Recovery clears the node's NIC-resident global-memory words so a
  /// restarted NM re-registers with a clean slate. Default: the
  /// implementation has no failure model (all nodes always healthy).
  virtual void set_node_failed(int node, bool failed) {
    (void)node;
    (void)failed;
  }
  virtual bool node_failed(int node) const {
    (void)node;
    return false;
  }

  // --- Table 5 descriptors ----------------------------------------------
  /// Latency to check a global condition and write one word to a set
  /// spanning `set_nodes` nodes.
  virtual sim::SimTime caw_latency(int set_nodes) const = 0;
  /// Aggregate XFER-AND-SIGNAL bandwidth delivered to `set_nodes`
  /// nodes (the paper reports this as per-node-rate × n).
  virtual sim::Bandwidth xfer_aggregate_bandwidth(int set_nodes) const = 0;
};

}  // namespace storm::mech
