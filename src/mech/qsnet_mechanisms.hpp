// QsNET implementation of the STORM mechanisms: a thin shim, because
// the hardware provides everything (Section 2.2's "one-to-one mapping
// with existing hardware mechanisms").
#pragma once

#include "mech/mechanisms.hpp"

namespace storm::mech {

class QsNetMechanisms final : public Mechanisms {
 public:
  explicit QsNetMechanisms(net::QsNet& qsnet) : net_(qsnet) {}

  std::string name() const override { return "QsNET"; }
  int nodes() const override { return net_.nodes(); }

  void xfer_and_signal(int src, NodeRange dsts, sim::Bytes bytes,
                       BufferPlace place, EventAddr remote_ev,
                       EventAddr local_done) override;

  bool test_event(int node, EventAddr ev) override {
    return net_.poll_event(node, ev);
  }
  sim::Task<> wait_event(int node, EventAddr ev) override {
    co_await net_.wait_event(node, ev);
  }

  sim::Task<bool> compare_and_write(int src, NodeRange dsts,
                                    GlobalAddr cmp_addr, Compare cmp,
                                    std::int64_t operand, GlobalAddr write_addr,
                                    std::int64_t write_value) override;

  void write_local(int node, GlobalAddr addr, std::int64_t value) override {
    net_.write_word(node, addr, value);
  }
  std::int64_t read_local(int node, GlobalAddr addr) const override {
    return net_.read_word(node, addr);
  }
  void signal_local(int node, EventAddr ev, int count = 1) override {
    net_.signal_local(node, ev, count);
  }

  void set_node_failed(int node, bool failed) override {
    if (failed) {
      net_.fail_node(node);
    } else {
      net_.recover_node(node);
      net_.clear_words(node);  // recovery: clean re-registration slate
    }
  }
  bool node_failed(int node) const override { return net_.node_failed(node); }

  sim::SimTime caw_latency(int set_nodes) const override {
    return net_.conditional_latency(set_nodes) + net_.params().caw_write_extra;
  }
  sim::Bandwidth xfer_aggregate_bandwidth(int set_nodes) const override {
    // Hardware multicast delivers the full per-link payload rate to
    // every destination simultaneously.
    return net_.broadcast_bandwidth(set_nodes, BufferPlace::MainMemory) *
           static_cast<double>(set_nodes);
  }

  net::QsNet& network() { return net_; }

 private:
  sim::Task<> do_xfer(int src, NodeRange dsts, sim::Bytes bytes,
                      BufferPlace place, EventAddr remote_ev,
                      EventAddr local_done);

  net::QsNet& net_;
};

}  // namespace storm::mech
