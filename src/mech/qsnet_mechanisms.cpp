#include "mech/qsnet_mechanisms.hpp"

namespace storm::mech {

using sim::Task;

void QsNetMechanisms::xfer_and_signal(int src, NodeRange dsts,
                                      sim::Bytes bytes, BufferPlace place,
                                      EventAddr remote_ev,
                                      EventAddr local_done) {
  // Fire-and-forget: the multicast runs as its own simulated activity;
  // completion is observable only through the events, exactly as the
  // paper specifies ("the only way to check for completion is to
  // TEST-EVENT on a local event that XFER-AND-SIGNAL signals").
  net_.simulator().spawn(
      do_xfer(src, dsts, bytes, place, remote_ev, local_done));
}

Task<> QsNetMechanisms::do_xfer(int src, NodeRange dsts, sim::Bytes bytes,
                                BufferPlace place, EventAddr remote_ev,
                                EventAddr local_done) {
  co_await net_.broadcast(src, dsts, bytes, place);
  if (remote_ev != kNoEvent) {
    net_.deliver_remote_signals(src, dsts, remote_ev);
  }
  if (local_done != kNoEvent) net_.signal_local(src, local_done);
}

Task<bool> QsNetMechanisms::compare_and_write(int src, NodeRange dsts,
                                              GlobalAddr cmp_addr, Compare cmp,
                                              std::int64_t operand,
                                              GlobalAddr write_addr,
                                              std::int64_t write_value) {
  const bool ok = co_await net_.conditional(src, dsts, cmp_addr, cmp, operand);
  if (ok && write_addr != kNoWrite) {
    co_await net_.conditional_write(src, dsts, write_addr, write_value);
  }
  co_return ok;
}

}  // namespace storm::mech
