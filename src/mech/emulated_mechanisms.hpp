// Software emulation of the STORM mechanisms over point-to-point
// messaging — what STORM would use on networks without hardware
// collectives (Section 4, Table 5).
//
// COMPARE-AND-WRITE is a combining tree: the comparison request fans
// out down a k-ary tree, per-node verdicts combine back up, and the
// optional write fans out again. XFER-AND-SIGNAL is a store-and-
// forward k-ary multicast tree: each parent serially feeds its
// children, so the delivered per-node bandwidth is roughly the
// point-to-point bandwidth divided by the fanout (the "~15n MB/s on
// Myrinet" row of Table 5), and latency grows with tree depth.
#pragma once

#include <unordered_map>
#include <vector>

#include "mech/mechanisms.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace storm::mech {

struct EmulationParams {
  std::string name;
  sim::SimTime hop_latency;        // one software p2p message
  sim::Bandwidth p2p_bandwidth;    // per-link payload rate
  int fanout = 2;                  // multicast/reduce tree arity
  sim::SimTime per_byte_host_overhead = sim::SimTime::zero();

  /// Table 5 rows (per-hop latencies chosen so that CAW latency is
  /// `46 log n`, `20 log n`, `20 log n` microseconds respectively).
  static EmulationParams gigabit_ethernet() {
    return {"Gigabit Ethernet", sim::SimTime::micros(23.0),
            sim::Bandwidth::mb_per_s(100.0), 2};
  }
  static EmulationParams myrinet() {
    return {"Myrinet", sim::SimTime::micros(10.0),
            sim::Bandwidth::mb_per_s(30.0), 2};
  }
  static EmulationParams infiniband() {
    return {"Infiniband", sim::SimTime::micros(10.0),
            sim::Bandwidth::mb_per_s(250.0), 2};
  }
};

class EmulatedMechanisms final : public Mechanisms {
 public:
  EmulatedMechanisms(sim::Simulator& sim, int nodes, EmulationParams params);

  std::string name() const override { return params_.name; }
  int nodes() const override { return nodes_; }
  const EmulationParams& params() const { return params_; }

  void xfer_and_signal(int src, NodeRange dsts, sim::Bytes bytes,
                       BufferPlace place, EventAddr remote_ev,
                       EventAddr local_done) override;

  bool test_event(int node, EventAddr ev) override;
  sim::Task<> wait_event(int node, EventAddr ev) override;

  sim::Task<bool> compare_and_write(int src, NodeRange dsts,
                                    GlobalAddr cmp_addr, Compare cmp,
                                    std::int64_t operand, GlobalAddr write_addr,
                                    std::int64_t write_value) override;

  void write_local(int node, GlobalAddr addr, std::int64_t value) override {
    if (failed_[node]) return;  // a dead NIC discards local writes
    words_[node][addr] = value;
  }
  std::int64_t read_local(int node, GlobalAddr addr) const override {
    const auto& m = words_[node];
    const auto it = m.find(addr);
    return it == m.end() ? 0 : it->second;
  }
  void signal_local(int node, EventAddr ev, int count = 1) override;

  /// Crash model: see Mechanisms::set_node_failed. Recovery wipes the
  /// node's global-memory words (clean re-registration slate); pending
  /// event semaphores survive so stale waiters stay harmlessly parked.
  void set_node_failed(int node, bool failed) override;
  bool node_failed(int node) const override { return failed_[node]; }

  /// Depth of the k-ary tree spanning `set_nodes` nodes.
  int tree_depth(int set_nodes) const;

  sim::SimTime caw_latency(int set_nodes) const override {
    // Request down + verdicts up: one hop_latency per level each way.
    return params_.hop_latency * (2 * tree_depth(set_nodes));
  }

  sim::Bandwidth xfer_aggregate_bandwidth(int set_nodes) const override {
    // Each interior node serially forwards to `fanout` children.
    return (params_.p2p_bandwidth / static_cast<double>(params_.fanout)) *
           static_cast<double>(set_nodes);
  }

 private:
  sim::Task<> do_xfer(int src, NodeRange dsts, sim::Bytes bytes,
                      EventAddr remote_ev, EventAddr local_done);
  sim::Semaphore& event_sem(int node, EventAddr ev);

  sim::Simulator& sim_;
  int nodes_;
  EmulationParams params_;
  std::vector<std::unordered_map<GlobalAddr, std::int64_t>> words_;
  std::vector<std::unordered_map<EventAddr, std::unique_ptr<sim::Semaphore>>>
      events_;
  std::vector<bool> failed_;
};

}  // namespace storm::mech
