#include "telemetry/aggregator.hpp"

#include <string>

namespace storm::telemetry {

using fabric::Envelope;
using fabric::MsgClass;
using fabric::OpKind;

MetricsAggregator::ClassStats& MetricsAggregator::stats(MsgClass c) {
  const auto i = static_cast<std::size_t>(c);
  ClassStats& s = cls_[i];
  if (!init_[i]) {
    init_[i] = true;
    const std::string base = "fabric." + std::string(to_string(c)) + ".";
    s.wire_ops = &reg_.counter(base + "wire_ops");
    s.delivered = &reg_.counter(base + "delivered");
    s.multicasts = &reg_.counter(base + "multicasts");
    s.xfers = &reg_.counter(base + "xfers");
    s.dropped = &reg_.counter(base + "dropped");
    s.duplicated = &reg_.counter(base + "duplicated");
    s.caw = &reg_.counter(base + "caw");
    s.caw_retries = &reg_.counter(base + "caw_retries");
    s.latency =
        &reg_.histogram("fabric.latency." + std::string(to_string(c)));
  }
  return s;
}

void MetricsAggregator::observe(const Envelope& e, const fabric::Action& a) {
  if (fabric::is_local_op(e.op)) {
    if (local_ops_ == nullptr) local_ops_ = &reg_.counter("fabric.ops.local");
    local_ops_->add(1);
    return;
  }
  if (e.op == OpKind::Note) {
    if (notes_ == nullptr) notes_ = &reg_.counter("fabric.ops.note");
    notes_->add(1);
    return;
  }

  // Wire operations: Xfer, CompareAndWrite, CommandMulticast,
  // CommandDeliver.
  ClassStats& s = stats(e.cls());
  s.wire_ops->add(1);
  if (control_bytes_ == nullptr) {
    control_bytes_ = &reg_.counter(kControlBytesCounter);
    payload_bytes_ = &reg_.counter(kPayloadBytesCounter);
    control_msgs_ = &reg_.counter("fabric.msgs.control");
  }

  if (a.duplicates > 0) s.duplicated->add(a.duplicates);
  if (a.drop) {
    // Dropped traffic never reaches the wire: it counts toward
    // `dropped` only (and byte accounting skips it), so the outcome
    // counters stay an exact partition of `wire_ops`.
    s.dropped->add(1);
    return;
  }

  // `now` at observe() time is decide() time; the chain's delay is
  // applied *after*, so the effective wire time includes it.
  const std::int64_t eff_ns = (sim_.now() + a.delay).raw_ns();

  switch (e.op) {
    case OpKind::Xfer:
      s.xfers->add(1);
      control_msgs_->add(1);
      // The chunk payload is the application image in flight — the
      // paper's overhead claim compares the management traffic around
      // it against it. Everything else on the fabric is control.
      if (e.cls() == MsgClass::LaunchChunk) {
        payload_bytes_->add(e.bytes);
      } else {
        control_bytes_->add(e.bytes);
      }
      break;
    case OpKind::CommandMulticast:
      s.multicasts->add(1);
      s.issue_ns = eff_ns;
      control_msgs_->add(1);
      control_bytes_->add(e.bytes);
      break;
    case OpKind::CommandDeliver:
      s.delivered->add(1);
      if (s.issue_ns >= 0) s.latency->record(eff_ns - s.issue_ns);
      break;
    case OpKind::CompareAndWrite: {
      s.caw->add(1);
      control_msgs_->add(1);
      // No modeled wire size for a network conditional; account its
      // descriptor at the message's compact encoding as a proxy.
      control_bytes_->add(static_cast<std::int64_t>(
          fabric::ControlMessage::wire_size(e.cls())));
      const std::int64_t ka = e.msg.word_a();
      const std::int64_t kb = e.msg.word_b();
      if (s.caw_seen && ka == s.last_caw_a && kb == s.last_caw_b) {
        s.caw_retries->add(1);
      }
      s.caw_seen = true;
      s.last_caw_a = ka;
      s.last_caw_b = kb;
      break;
    }
    default:
      break;
  }
}

}  // namespace storm::telemetry
