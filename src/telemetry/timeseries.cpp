#include "telemetry/timeseries.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace storm::telemetry {

namespace {

void put_i(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void put_d(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const std::string kOverheadRatioName{kOverheadRatioGauge};
const std::string kBreachCounterName = "watchdog.breaches";

}  // namespace

// ---------------------------------------------------------------------------
// SeriesPoint

double SeriesPoint::quantile(double q) const {
  if (count <= 0) return 0.0;
  auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::int64_t cum = 0;
  for (const auto& b : buckets) {
    cum += b.delta;
    if (cum >= rank) {
      if (b.bucket <= 0) return 0.0;
      // Representative: midpoint of [lo, 2*lo) — monotone in the
      // bucket index, exact in double for every bucket.
      return 1.5 * static_cast<double>(Histogram::bucket_lo(b.bucket));
    }
  }
  // count says samples exist but the bucket deltas disagree; a
  // corrupted sketch — pin to the last bucket rather than invent data.
  if (buckets.empty()) return 0.0;
  return 1.5 * static_cast<double>(Histogram::bucket_lo(buckets.back().bucket));
}

// ---------------------------------------------------------------------------
// WatchdogRule parsing

bool parse_watchdog(std::string_view spec, WatchdogRule& out,
                    std::string* err) {
  const auto fail = [err](const std::string& m) {
    if (err != nullptr) *err = m;
    return false;
  };
  std::vector<std::string> tok;
  std::string cur;
  for (const char c : spec) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!cur.empty()) tok.push_back(std::move(cur)), cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) tok.push_back(std::move(cur));
  if (tok.size() < 3) {
    return fail("expected '<metric> [pNN|rate|delta|value] <cmp> "
                "<threshold> [for N]'");
  }
  out = WatchdogRule{};
  std::size_t i = 0;
  out.metric = tok[i++];
  // Optional selector.
  const std::string& sel = tok[i];
  if (sel == "rate") {
    out.select = WatchdogRule::Select::Rate;
    ++i;
  } else if (sel == "delta") {
    out.select = WatchdogRule::Select::Delta;
    ++i;
  } else if (sel == "value") {
    out.select = WatchdogRule::Select::Value;
    ++i;
  } else if (sel.size() >= 2 && sel[0] == 'p' &&
             sel.find_first_not_of("0123456789", 1) == std::string::npos) {
    const long nn = std::strtol(sel.c_str() + 1, nullptr, 10);
    if (nn < 1 || nn > 99) return fail("quantile must be p1..p99: " + sel);
    out.select = WatchdogRule::Select::Quantile;
    out.q = static_cast<double>(nn) / 100.0;
    ++i;
  }
  if (i >= tok.size()) return fail("missing comparator");
  const std::string& cmp = tok[i++];
  if (cmp == ">") {
    out.cmp = WatchdogRule::Cmp::GT;
  } else if (cmp == ">=") {
    out.cmp = WatchdogRule::Cmp::GE;
  } else if (cmp == "<") {
    out.cmp = WatchdogRule::Cmp::LT;
  } else if (cmp == "<=") {
    out.cmp = WatchdogRule::Cmp::LE;
  } else {
    return fail("unknown comparator '" + cmp + "' (use > >= < <=)");
  }
  if (i >= tok.size()) return fail("missing threshold");
  {
    char* end = nullptr;
    out.threshold = std::strtod(tok[i].c_str(), &end);
    if (end == tok[i].c_str() || *end != '\0') {
      return fail("threshold '" + tok[i] + "' is not a number");
    }
    ++i;
  }
  if (i < tok.size()) {
    if (tok[i] != "for") return fail("unexpected token '" + tok[i] + "'");
    ++i;
    if (i >= tok.size()) return fail("'for' needs a window count");
    char* end = nullptr;
    const long n = std::strtol(tok[i].c_str(), &end, 10);
    if (end == tok[i].c_str() || *end != '\0' || n < 1 || n > 1'000'000) {
      return fail("window count '" + tok[i] + "' must be in [1, 1e6]");
    }
    out.windows = static_cast<int>(n);
    ++i;
    if (i < tok.size() && (tok[i] == "windows" || tok[i] == "window")) ++i;
  }
  if (i != tok.size()) return fail("unexpected trailing tokens");
  out.spec = std::string(spec);
  return true;
}

// ---------------------------------------------------------------------------
// TimeSeriesStore

std::size_t TimeSeriesStore::total_points() const {
  std::size_t n = 0;
  for (const auto& [name, s] : series) n += s.points.size();
  return n;
}

void TimeSeriesStore::merge(const TimeSeriesStore& o) {
  if (window_ns == 0) window_ns = o.window_ns;
  if (o.last_window >= 0) {
    if (last_window < 0) {
      first_window = o.first_window;
      last_window = o.last_window;
    } else {
      first_window = std::min(first_window, o.first_window);
      last_window = std::max(last_window, o.last_window);
    }
  }
  end_ns = std::max(end_ns, o.end_ns);
  dropped_windows += o.dropped_windows;
  for (const auto& [name, os] : o.series) {
    auto it = series.find(name);
    if (it == series.end()) {
      series.emplace(name, os);
      continue;
    }
    Series& s = it->second;
    std::vector<SeriesPoint> merged;
    merged.reserve(s.points.size() + os.points.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < s.points.size() || b < os.points.size()) {
      if (b >= os.points.size() ||
          (a < s.points.size() && s.points[a].window < os.points[b].window)) {
        merged.push_back(std::move(s.points[a++]));
      } else if (a >= s.points.size() ||
                 os.points[b].window < s.points[a].window) {
        merged.push_back(os.points[b++]);
      } else {
        // Same window: combine the way the cumulative registry would
        // have (counters/sketches add, gauge last-merge wins).
        SeriesPoint p = std::move(s.points[a++]);
        const SeriesPoint& q = os.points[b++];
        switch (s.kind) {
          case SeriesKind::Counter: p.delta += q.delta; break;
          case SeriesKind::Gauge: p.value = q.value; break;
          case SeriesKind::Histogram: {
            p.count += q.count;
            p.sum += q.sum;
            std::vector<SketchBucket> bk;
            bk.reserve(p.buckets.size() + q.buckets.size());
            std::size_t x = 0;
            std::size_t y = 0;
            while (x < p.buckets.size() || y < q.buckets.size()) {
              if (y >= q.buckets.size() ||
                  (x < p.buckets.size() &&
                   p.buckets[x].bucket < q.buckets[y].bucket)) {
                bk.push_back(p.buckets[x++]);
              } else if (x >= p.buckets.size() ||
                         q.buckets[y].bucket < p.buckets[x].bucket) {
                bk.push_back(q.buckets[y++]);
              } else {
                bk.push_back({p.buckets[x].bucket,
                              p.buckets[x].delta + q.buckets[y].delta});
                ++x;
                ++y;
              }
            }
            p.buckets = std::move(bk);
            break;
          }
        }
        merged.push_back(std::move(p));
      }
    }
    s.points = std::move(merged);
  }
  breaches.insert(breaches.end(), o.breaches.begin(), o.breaches.end());
}

std::string TimeSeriesStore::to_json() const {
  std::string o;
  o.reserve(4096 + 48 * total_points());
  o += "{\n  \"schema\": \"";
  o += kTimeSeriesSchema;
  o += "\",\n  \"window_ns\": ";
  put_i(o, window_ns);
  o += ",\n  \"first_window\": ";
  put_i(o, first_window);
  o += ",\n  \"last_window\": ";
  put_i(o, last_window);
  o += ",\n  \"end_ns\": ";
  put_i(o, end_ns);
  o += ",\n  \"dropped_windows\": ";
  put_i(o, dropped_windows);
  o += ",\n  \"series\": {";
  bool first = true;
  for (const auto& [name, s] : series) {
    o += first ? "\n" : ",\n";
    first = false;
    o += "    \"" + esc(name) + "\": {\"kind\": \"";
    o += to_string(s.kind);
    o += "\", \"points\": [";
    bool fp = true;
    for (const auto& p : s.points) {
      o += fp ? "\n" : ",\n";
      fp = false;
      o += "      [";
      put_i(o, p.window);
      switch (s.kind) {
        case SeriesKind::Counter:
          o += ", ";
          put_i(o, p.delta);
          break;
        case SeriesKind::Gauge:
          o += ", ";
          put_d(o, p.value);
          break;
        case SeriesKind::Histogram: {
          o += ", ";
          put_i(o, p.count);
          o += ", ";
          put_i(o, p.sum);
          o += ", ";
          put_d(o, p.quantile(0.50));
          o += ", ";
          put_d(o, p.quantile(0.90));
          o += ", ";
          put_d(o, p.quantile(0.99));
          o += ", [";
          bool fb = true;
          for (const auto& b : p.buckets) {
            if (!fb) o += ", ";
            fb = false;
            o += "[";
            put_i(o, Histogram::bucket_lo(b.bucket));
            o += ", ";
            put_i(o, b.delta);
            o += "]";
          }
          o += "]";
          break;
        }
      }
      o += "]";
    }
    o += fp ? "]}" : "\n    ]}";
  }
  o += first ? "},\n" : "\n  },\n";
  o += "  \"breaches\": [";
  bool fb = true;
  for (const auto& b : breaches) {
    o += fb ? "\n" : ",\n";
    fb = false;
    o += "    {\"rule\": \"" + esc(b.rule) + "\", \"metric\": \"" +
         esc(b.metric) + "\", \"window\": ";
    put_i(o, b.window);
    o += ", \"t_ns\": ";
    put_i(o, b.t_ns);
    o += ", \"value\": ";
    put_d(o, b.value);
    o += ", \"threshold\": ";
    put_d(o, b.threshold);
    o += "}";
  }
  o += fb ? "]\n}\n" : "\n  ]\n}\n";
  return o;
}

double TimeSeriesStore::PointView::rate() const {
  const std::int64_t span = t_end_ns - t_start_ns;
  if (span <= 0) return 0.0;
  return static_cast<double>(point->delta) * 1e9 / static_cast<double>(span);
}

void TimeSeriesStore::visit_points(
    const std::function<bool(const PointView&)>& v) const {
  if (last_window < 0) return;
  struct Cursor {
    const std::string* name;
    const Series* s;
    std::size_t i = 0;
  };
  std::vector<Cursor> cs;
  cs.reserve(series.size());
  for (const auto& [name, s] : series) cs.push_back({&name, &s, 0});
  for (std::int64_t w = first_window; w <= last_window; ++w) {
    const std::int64_t t_start = w * window_ns;
    std::int64_t t_end = (w + 1) * window_ns;
    if (w == last_window && end_ns > t_start && end_ns < t_end) t_end = end_ns;
    for (auto& c : cs) {
      const auto& pts = c.s->points;
      while (c.i < pts.size() && pts[c.i].window < w) ++c.i;
      if (c.i >= pts.size() || pts[c.i].window != w) continue;
      PointView pv;
      pv.window = w;
      pv.t_start_ns = t_start;
      pv.t_end_ns = t_end;
      pv.name = c.name;
      pv.kind = c.s->kind;
      pv.point = &pts[c.i];
      if (!v(pv)) return;
      ++c.i;
    }
  }
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder

TimeSeriesRecorder::TimeSeriesRecorder(sim::Simulator& sim,
                                       MetricsRegistry& reg,
                                       TimeSeriesOptions opts)
    : sim_(sim), reg_(reg), opts_(std::move(opts)) {
  assert(opts_.window.raw_ns() > 0);
  store_.window_ns = opts_.window.raw_ns();
  streaks_.assign(opts_.watchdogs.size(), 0);
}

TimeSeriesRecorder::~TimeSeriesRecorder() { disarm(); }

void TimeSeriesRecorder::arm() {
  if (timer_ != sim::kInvalidPeriodic) return;
  // Window indices are absolute (w covers [w*W, (w+1)*W)), so the
  // recorder must start at t=0 — the same place every harness arms
  // its clusters.
  assert(sim_.now().raw_ns() == 0 && "timeseries windows align to t=0");
  timer_ = sim_.schedule_periodic(opts_.window, opts_.window,
                                  [this] { tick(); });
}

void TimeSeriesRecorder::disarm() {
  if (timer_ == sim::kInvalidPeriodic) return;
  sim_.cancel_periodic(timer_);
  timer_ = sim::kInvalidPeriodic;
}

void TimeSeriesRecorder::tick() {
  const std::int64_t w = next_window_;
  record_window(w, store_, /*commit=*/true);
  store_.last_window = w;
  store_.end_ns = sim_.now().raw_ns();
  ++next_window_;
  evaluate_watchdogs(w);
  prune();
}

bool TimeSeriesRecorder::record_window(std::int64_t w, TimeSeriesStore& out,
                                       bool commit) const {
  bool any = false;
  const auto add_point = [&](const std::string& name,
                             SeriesKind kind) -> SeriesPoint& {
    auto it = out.series.find(name);
    if (it == out.series.end()) {
      it = out.series.emplace(name, Series{kind, {}}).first;
    }
    auto& p = it->second.points.emplace_back();
    p.window = w;
    any = true;
    return p;
  };

  std::int64_t control_delta = 0;
  std::int64_t payload_delta = 0;
  reg_.for_each_counter([&](const std::string& name, const Counter& c) {
    const std::int64_t v = c.value();
    const auto it = last_counters_.find(name);
    const std::int64_t prev = it != last_counters_.end() ? it->second : 0;
    const std::int64_t d = v - prev;
    if (name == kControlBytesCounter) control_delta = d;
    if (name == kPayloadBytesCounter) payload_delta = d;
    if (d != 0) add_point(name, SeriesKind::Counter).delta = d;
    if (commit) {
      if (it != last_counters_.end()) {
        it->second = v;
      } else {
        last_counters_.emplace(name, v);
      }
    }
  });

  reg_.for_each_histogram([&](const std::string& name, const Histogram& h) {
    const auto it = last_hists_.find(name);
    const HistCum* prev = it != last_hists_.end() ? &it->second : nullptr;
    const std::int64_t dcount = h.count() - (prev != nullptr ? prev->count : 0);
    if (dcount > 0) {
      SeriesPoint& p = add_point(name, SeriesKind::Histogram);
      p.count = dcount;
      p.sum = h.sum() - (prev != nullptr ? prev->sum : 0);
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        const std::int64_t pb =
            prev != nullptr && !prev->buckets.empty() ? prev->buckets[i] : 0;
        const std::int64_t bd = h.bucket_count(i) - pb;
        if (bd != 0) p.buckets.push_back({i, bd});
      }
    }
    if (commit) {
      HistCum& cum = it != last_hists_.end() ? it->second : last_hists_[name];
      cum.count = h.count();
      cum.sum = h.sum();
      cum.buckets.resize(Histogram::kBuckets);
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        cum.buckets[i] = h.bucket_count(i);
      }
    }
  });

  reg_.for_each_gauge([&](const std::string& name, const Gauge& g) {
    // The cumulative overhead ratio is only computed at export time
    // (update_overhead_ratio); the windowed one is derived below from
    // the byte-counter deltas, so skip any registry gauge of that name.
    if (name == kOverheadRatioName) return;
    if (!g.ever_set()) return;
    const double v = g.value();
    const auto it = last_gauges_.find(name);
    if (it == last_gauges_.end() || it->second != v) {
      add_point(name, SeriesKind::Gauge).value = v;
    }
    if (commit) {
      if (it != last_gauges_.end()) {
        it->second = v;
      } else {
        last_gauges_.emplace(name, v);
      }
    }
  });

  if (control_delta + payload_delta > 0) {
    add_point(kOverheadRatioName, SeriesKind::Gauge).value =
        static_cast<double>(control_delta) /
        static_cast<double>(control_delta + payload_delta);
  }
  return any;
}

void TimeSeriesRecorder::evaluate_watchdogs(std::int64_t w) {
  const std::int64_t wn = store_.window_ns;
  for (std::size_t r = 0; r < opts_.watchdogs.size(); ++r) {
    const WatchdogRule& rule = opts_.watchdogs[r];
    WatchdogRule::Select sel = rule.select;
    if (sel == WatchdogRule::Select::Auto) {
      if (rule.metric == kOverheadRatioName ||
          reg_.find_gauge(rule.metric) != nullptr) {
        sel = WatchdogRule::Select::Value;
      } else if (reg_.find_histogram(rule.metric) != nullptr) {
        sel = WatchdogRule::Select::Quantile;
      } else if (reg_.find_counter(rule.metric) != nullptr) {
        sel = WatchdogRule::Select::Rate;
      }
    }
    const SeriesPoint* pt = nullptr;
    if (const auto it = store_.series.find(rule.metric);
        it != store_.series.end() && !it->second.points.empty() &&
        it->second.points.back().window == w) {
      pt = &it->second.points.back();
    }
    bool defined = false;
    double v = 0.0;
    switch (sel) {
      case WatchdogRule::Select::Rate:
      case WatchdogRule::Select::Delta:
        if (reg_.find_counter(rule.metric) != nullptr) {
          defined = true;
          const auto d =
              static_cast<double>(pt != nullptr ? pt->delta : 0);
          v = sel == WatchdogRule::Select::Delta
                  ? d
                  : d * 1e9 / static_cast<double>(wn);
        }
        break;
      case WatchdogRule::Select::Value:
        if (rule.metric == kOverheadRatioName) {
          // Derived ratio: defined only in windows that saw traffic.
          if (pt != nullptr) {
            defined = true;
            v = pt->value;
          }
        } else if (const Gauge* g = reg_.find_gauge(rule.metric);
                   g != nullptr && g->ever_set()) {
          defined = true;
          v = g->value();
        }
        break;
      case WatchdogRule::Select::Quantile:
        if (pt != nullptr && pt->count > 0) {
          defined = true;
          v = pt->quantile(rule.q);
        }
        break;
      case WatchdogRule::Select::Auto:
        break;  // metric unknown anywhere: undefined, streak resets
    }
    bool breach = false;
    if (defined) {
      switch (rule.cmp) {
        case WatchdogRule::Cmp::GT: breach = v > rule.threshold; break;
        case WatchdogRule::Cmp::GE: breach = v >= rule.threshold; break;
        case WatchdogRule::Cmp::LT: breach = v < rule.threshold; break;
        case WatchdogRule::Cmp::LE: breach = v <= rule.threshold; break;
      }
    }
    if (!breach) {
      streaks_[r] = 0;
      continue;
    }
    // Fire once per episode: when the streak first reaches `for N`.
    if (++streaks_[r] != rule.windows) continue;
    const std::int64_t t_ns = (w + 1) * wn;
    store_.breaches.push_back(
        {rule.spec, rule.metric, w, t_ns, v, rule.threshold});
    reg_.counter(kBreachCounterName).add(1);
    STORM_TRACE(sim_, "watchdog",
                "BREACH " + rule.spec + " (window " + std::to_string(w) +
                    ", value " + std::to_string(v) + ")");
  }
}

void TimeSeriesRecorder::prune() {
  if (opts_.retention == 0) return;
  const auto retention = static_cast<std::int64_t>(opts_.retention);
  if (store_.last_window - store_.first_window + 1 <= retention) return;
  const std::int64_t new_first = store_.last_window - retention + 1;
  for (auto& [name, s] : store_.series) {
    auto& pts = s.points;
    std::size_t k = 0;
    while (k < pts.size() && pts[k].window < new_first) ++k;
    if (k > 0) {
      pts.erase(pts.begin(),
                pts.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }
  store_.dropped_windows += new_first - store_.first_window;
  store_.first_window = new_first;
}

TimeSeriesStore TimeSeriesRecorder::snapshot() const {
  TimeSeriesStore out = store_;
  out.window_ns = opts_.window.raw_ns();
  const std::int64_t now = sim_.now().raw_ns();
  if (now > next_window_ * out.window_ns) {
    // In-progress tail window, diffed without advancing the recorder.
    record_window(next_window_, out, /*commit=*/false);
    out.last_window = next_window_;
  }
  out.end_ns = now;
  return out;
}

}  // namespace storm::telemetry
