// Time-resolved telemetry plane (DESIGN.md §3.7): a deterministic
// windowed time-series recorder layered on MetricsRegistry.
//
// The cumulative aggregates in storm.metrics.v1 integrate the whole
// run away; the questions the ROADMAP asks (saturation knees, overhead
// transients, failover gaps) need *time-resolved* data. The
// TimeSeriesRecorder ticks on a configurable simulated-time window
// (default 10 ms), riding a `schedule_periodic` cohort so it stays off
// the hot path, and on each tick diffs the registry against the
// previous tick:
//
//   counters   -> sparse per-window deltas (rate = delta / window)
//   histograms -> per-window quantile sketches: the log2 bucket deltas
//                 of the window, from which p50/p90/p99 are derived
//                 deterministically at read time
//   gauges     -> value sampled at window end, recorded on change
//
// Windows live in a bounded flight-recorder ring (`retention`
// windows); older windows are pruned and counted in
// `dropped_windows`. A WatchdogRegistry of threshold/SLO rules (e.g.
// "fabric.overhead.ratio > 0.01 for 3", "mm.failover.gap_ns p99 >
// 5e7") is evaluated once per completed window and fires
// deterministic, trace-stamped breach events ("watchdog" trace
// component + `watchdog.breaches` counter) that `--watchdog-fail` can
// turn into a nonzero harness exit.
//
// Determinism contract: everything is keyed to simulated time and the
// registry's ordered maps, so same-seed runs serialise byte-identical
// storm.timeseries.v1 documents. `snapshot()` is a pure read (the
// in-progress tail window is diffed at call time without touching
// recorder state), so parallel sweep workers can snapshot per-point
// stores that the serial commit path merges in index order — the same
// snapshot/adopt split the trace/state exports use — keeping the
// export byte-identical across `--jobs N`.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace storm::telemetry {

inline constexpr std::string_view kTimeSeriesSchema = "storm.timeseries.v1";

enum class SeriesKind : std::uint8_t { Counter, Gauge, Histogram };

constexpr std::string_view to_string(SeriesKind k) {
  switch (k) {
    case SeriesKind::Counter: return "counter";
    case SeriesKind::Gauge: return "gauge";
    case SeriesKind::Histogram: return "histogram";
  }
  return "?";
}

/// One nonzero log2 bucket of a window's histogram sketch.
struct SketchBucket {
  int bucket = 0;            // Histogram bucket index (see bucket_lo)
  std::int64_t delta = 0;    // samples landing in this bucket this window
};

/// One recorded window of one series. Which fields are meaningful
/// depends on the series kind; unused fields stay zero so merge and
/// serialisation are uniform.
struct SeriesPoint {
  std::int64_t window = 0;   // absolute window index (t / window_ns)
  std::int64_t delta = 0;    // counter: increment over the window
  double value = 0.0;        // gauge: value at window end
  std::int64_t count = 0;    // histogram: samples recorded this window
  std::int64_t sum = 0;      // histogram: sum of samples this window
  std::vector<SketchBucket> buckets;  // histogram: sorted, nonzero only

  /// Deterministic bucket-resolution quantile (q in [0,1]) of this
  /// window's sketch: the representative value (1.5x bucket_lo) of the
  /// bucket holding the ceil(q*count)-th sample. 0 when count == 0.
  double quantile(double q) const;
};

struct Series {
  SeriesKind kind = SeriesKind::Counter;
  std::vector<SeriesPoint> points;  // sorted by window, sparse
};

/// One threshold/SLO rule. Text form (see parse_watchdog):
///   <metric> [pNN | rate | delta | value] <cmp> <threshold> [for N]
struct WatchdogRule {
  enum class Select : std::uint8_t {
    Auto,      // gauge -> value, histogram -> p99, counter -> rate
    Rate,      // counter delta / window, per second
    Delta,     // raw counter delta per window
    Value,     // gauge value at window end
    Quantile,  // histogram pNN of the window sketch
  };
  enum class Cmp : std::uint8_t { GT, GE, LT, LE };

  std::string spec;     // original text, used as the rule's display name
  std::string metric;
  Select select = Select::Auto;
  double q = 0.99;      // Quantile only
  Cmp cmp = Cmp::GT;
  double threshold = 0.0;
  int windows = 1;      // consecutive breaching windows required to fire
};

/// Parse a rule spec ("fabric.overhead.ratio > 0.01 for 3",
/// "mm.failover.gap_ns p99 > 5e7"). Returns false and sets *err on a
/// malformed spec.
bool parse_watchdog(std::string_view spec, WatchdogRule& out,
                    std::string* err = nullptr);

/// A fired rule: the first window of a breach episode whose
/// consecutive-window streak reached the rule's `for N`.
struct WatchdogBreach {
  std::string rule;     // the rule's spec text
  std::string metric;
  std::int64_t window = 0;
  std::int64_t t_ns = 0;      // end of the breaching window
  double value = 0.0;         // observed value that window
  double threshold = 0.0;
};

struct TimeSeriesOptions {
  sim::SimTime window = sim::SimTime::ms(10);
  std::size_t retention = 4096;  // flight-recorder ring, in windows
  std::vector<WatchdogRule> watchdogs;
};

/// The recorded document: per-series sparse window points plus fired
/// breaches. Value type — copyable, mergeable, serialisable — so it
/// can cross the SweepRunner snapshot/adopt boundary.
class TimeSeriesStore {
 public:
  std::int64_t window_ns = 0;
  std::int64_t first_window = 0;    // earliest retained window
  std::int64_t last_window = -1;    // -1: nothing recorded yet
  std::int64_t end_ns = 0;          // sim time the store was cut at
  std::int64_t dropped_windows = 0;
  std::map<std::string, Series, std::less<>> series;
  std::vector<WatchdogBreach> breaches;

  bool empty() const { return series.empty() && breaches.empty(); }
  std::size_t total_points() const;

  /// Exact merge: points align on absolute window index (counter and
  /// sketch deltas add, gauge last-wins mirroring Gauge::merge),
  /// breaches append. Merging per-run stores in commit order yields
  /// the same bytes as one serial pass — the --jobs N contract.
  void merge(const TimeSeriesStore& o);

  /// storm.timeseries.v1 (sorted, fixed float format; byte-identical
  /// for same-seed runs).
  std::string to_json() const;

  /// Everything a visitor needs to turn one point into a row.
  struct PointView {
    std::int64_t window = 0;
    std::int64_t t_start_ns = 0;
    std::int64_t t_end_ns = 0;  // tail window is clamped to end_ns
    const std::string* name = nullptr;
    SeriesKind kind = SeriesKind::Counter;
    const SeriesPoint* point = nullptr;
    double rate() const;  // counter: delta per second of window actually covered
  };

  /// Visit every point in (window, series-name) order — time-major,
  /// the order the query table exposes. Return false to stop early.
  void visit_points(const std::function<bool(const PointView&)>& v) const;
};

/// Ticks once per window over a live registry; owns the diff state and
/// the retention ring. See the file comment for semantics.
class TimeSeriesRecorder {
 public:
  /// `sim` and `reg` must outlive the recorder. Call arm() to start
  /// the periodic tick (kept separate so a cluster can construct the
  /// recorder before its fabric exists).
  TimeSeriesRecorder(sim::Simulator& sim, MetricsRegistry& reg,
                     TimeSeriesOptions opts);
  ~TimeSeriesRecorder();
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  void arm();     // idempotent; first tick at t = now + window
  void disarm();  // idempotent

  const TimeSeriesOptions& options() const { return opts_; }
  std::int64_t windows_recorded() const { return next_window_; }
  std::size_t breach_count() const { return store_.breaches.size(); }

  /// Pure read: the retained store plus an in-progress tail window
  /// diffed at call time (watchdogs are not evaluated on the partial
  /// tail). Safe to call from sweep workers while the run is live.
  TimeSeriesStore snapshot() const;

 private:
  struct HistCum {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::vector<std::int64_t> buckets;  // kBuckets wide once touched
  };

  void tick();
  /// Diff `reg_` against the cumulative maps into `out` as window `w`.
  /// When `commit` is true the cumulative maps advance; snapshot()
  /// calls it with commit=false for the tail. Returns true when at
  /// least one point was recorded.
  bool record_window(std::int64_t w, TimeSeriesStore& out, bool commit) const;
  void evaluate_watchdogs(std::int64_t w);
  void prune();

  sim::Simulator& sim_;
  MetricsRegistry& reg_;
  TimeSeriesOptions opts_;
  sim::PeriodicId timer_ = sim::kInvalidPeriodic;
  std::int64_t next_window_ = 0;  // index the next tick will record
  TimeSeriesStore store_;

  // Cumulative values as of the last committed tick.
  mutable std::map<std::string, std::int64_t, std::less<>> last_counters_;
  mutable std::map<std::string, HistCum, std::less<>> last_hists_;
  mutable std::map<std::string, double, std::less<>> last_gauges_;

  // Per-rule consecutive-breach streaks (parallel to opts_.watchdogs).
  std::vector<int> streaks_;
};

}  // namespace storm::telemetry
