// Deterministic causal tracing over simulated time.
//
// Every dæmon opens RAII TraceSpans around the stages of its work (an
// MM boundary, one chunk write, a strobe broadcast); the span carries a
// fabric::TraceContext (64-bit trace id + span id) that the fabric
// threads through XFER / COMPARE-AND-WRITE / command envelopes, so the
// receiving dæmon can parent its own span on the exact operation that
// caused it. Spans land in a bounded TraceBuffer whose byte image is
// same-seed byte-identical (like StructuredTraceSink): span ids are
// allocated sequentially, timestamps are simulated time, and nothing
// consumes randomness.
//
// Trace-id scheme:
//   1                                      control plane (strobes,
//                                          heartbeats, MM boundaries)
//   2 + job * kIncarnationsPerJob + inc    one trace per job incarnation
//
// The buffer exports to Chrome/Perfetto trace-event JSON (one process
// per node, one thread lane per dæmon, flow arrows along cause→effect
// edges) and feeds the launch critical-path analyzer. Spans still open
// at export time (e.g. dæmon loops parked in suspended coroutine
// frames when the simulation drains) are skipped by both consumers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/simulator.hpp"

namespace storm::telemetry {

/// Matches storm::kMaxIncarnations (protocol.hpp); duplicated here so
/// the telemetry layer does not depend on the dæmon headers.
inline constexpr std::uint64_t kIncarnationsPerJob = 8;

/// Trace id of the control-plane trace (boundaries, strobes,
/// heartbeats, failover — everything not owned by one job).
inline constexpr std::uint64_t kControlTrace = 1;

/// Trace id of job `job`, incarnation `inc`.
constexpr std::uint64_t job_trace_id(int job, int inc) {
  return 2 + static_cast<std::uint64_t>(job) * kIncarnationsPerJob +
         static_cast<std::uint64_t>(inc);
}

enum class SpanKind : std::uint8_t {
  JobLaunch = 0,  // root: placement → all PEs forked (one per incarnation)
  MmBoundary,     // one MM boundary cycle
  MmObserve,      // MM polls one job's report/termination queries
  MmLaunchIssue,  // MM multicasts one job's launch command
  MmStrobe,       // MM broadcasts one timeslot switch
  MmHeartbeat,    // one heartbeat round
  MmKill,         // MM kills one job incarnation
  MmFailover,     // standby MM takes over
  FtTransfer,     // whole-file send on the MM
  FtRead,         // producer reads one chunk from the filesystem
  FtAssist,       // sender-side assist compute for one chunk
  FtBcast,        // hardware broadcast of one chunk (XFER + wait)
  FtStall,        // sender blocked on flow control
  NmPrepare,      // NM arms the chunk receiver
  NmLaunch,       // NM handles a launch command
  NmKill,         // NM handles a kill command
  NmStrobe,       // NM enacts a timeslot switch
  NmHeartbeat,    // NM answers a heartbeat epoch
  NmChunk,        // NM waits for + writes one broadcast chunk
  PlFork,         // program launcher forks local PEs
  Idle,           // analysis-only: critical-path gap between spans
};
inline constexpr int kSpanKindCount = static_cast<int>(SpanKind::Idle) + 1;

constexpr std::string_view to_string(SpanKind k) {
  switch (k) {
    case SpanKind::JobLaunch: return "job-launch";
    case SpanKind::MmBoundary: return "mm-boundary";
    case SpanKind::MmObserve: return "mm-observe";
    case SpanKind::MmLaunchIssue: return "mm-launch-issue";
    case SpanKind::MmStrobe: return "mm-strobe";
    case SpanKind::MmHeartbeat: return "mm-heartbeat";
    case SpanKind::MmKill: return "mm-kill";
    case SpanKind::MmFailover: return "mm-failover";
    case SpanKind::FtTransfer: return "ft-transfer";
    case SpanKind::FtRead: return "ft-read";
    case SpanKind::FtAssist: return "ft-assist";
    case SpanKind::FtBcast: return "ft-bcast";
    case SpanKind::FtStall: return "ft-stall";
    case SpanKind::NmPrepare: return "nm-prepare";
    case SpanKind::NmLaunch: return "nm-launch";
    case SpanKind::NmKill: return "nm-kill";
    case SpanKind::NmStrobe: return "nm-strobe";
    case SpanKind::NmHeartbeat: return "nm-heartbeat";
    case SpanKind::NmChunk: return "nm-chunk";
    case SpanKind::PlFork: return "pl-fork";
    case SpanKind::Idle: return "idle";
  }
  return "?";
}

/// Perfetto thread lane a span renders on within its node's process.
constexpr std::string_view lane(SpanKind k) {
  switch (k) {
    case SpanKind::JobLaunch: return "jobs";
    case SpanKind::MmBoundary:
    case SpanKind::MmObserve:
    case SpanKind::MmLaunchIssue:
    case SpanKind::MmStrobe:
    case SpanKind::MmHeartbeat:
    case SpanKind::MmKill:
    case SpanKind::MmFailover: return "mm";
    case SpanKind::FtTransfer:
    case SpanKind::FtRead:
    case SpanKind::FtAssist:
    case SpanKind::FtBcast:
    case SpanKind::FtStall: return "ft";
    case SpanKind::NmPrepare:
    case SpanKind::NmLaunch:
    case SpanKind::NmKill:
    case SpanKind::NmStrobe:
    case SpanKind::NmHeartbeat:
    case SpanKind::NmChunk: return "nm";
    case SpanKind::PlFork: return "pl";
    case SpanKind::Idle: return "idle";
  }
  return "?";
}

/// One closed-or-open span. 48 bytes serialised (packed little-endian).
struct SpanRecord {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;    // sequential from 1; 0 is "no span"
  std::uint64_t parent = 0;  // 0 = root of its trace
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = -1;  // -1 while open
  std::int32_t node = -1;      // -1 = cluster-wide (e.g. MM failover)
  std::uint8_t kind = 0;       // SpanKind
  std::int64_t a = 0;          // kind-specific (job id, chunk index, …)
  std::int64_t b = 0;

  bool open() const { return t_end_ns < 0; }
  SpanKind span_kind() const { return static_cast<SpanKind>(kind); }
};

inline constexpr std::size_t kSpanRecordBytes = 8 * 5 + 4 + 1 + 8 * 2;

/// A cause→effect arrow between two spans (renders as a Perfetto flow).
struct FlowEdge {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

/// Bounded, byte-serialisable store of spans and flow edges. Span ids
/// are sequential, so two same-seed runs produce byte-identical
/// buffers. When full, new spans are dropped (counted) — open/close of
/// already-recorded spans still lands.
class TraceBuffer {
 public:
  explicit TraceBuffer(sim::Simulator& sim) : sim_(sim) {}

  /// Default span bound: ~48 MB of spans before dropping.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  void set_capacity(std::size_t n) { capacity_ = n; }
  std::size_t capacity() const { return capacity_; }
  std::size_t dropped() const { return dropped_; }

  /// Open a span; returns its id (0 if the buffer is full).
  std::uint64_t begin_span(SpanKind kind, int node, std::uint64_t trace,
                           std::uint64_t parent, std::int64_t a = 0,
                           std::int64_t b = 0);
  /// Close span `id` at the current simulated time (no-op for id 0 or
  /// an already-closed span).
  void end_span(std::uint64_t id);
  /// Record a cause→effect arrow (no-op when either end is 0).
  void flow(std::uint64_t from, std::uint64_t to);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<FlowEdge>& flows() const { return flows_; }
  const SpanRecord* find(std::uint64_t id) const;

  /// Packed little-endian image: span count, flow count, then every
  /// span and every flow edge. Open spans serialise with t_end = -1.
  std::vector<std::uint8_t> bytes() const;

  sim::Simulator& simulator() { return sim_; }

 private:
  SpanRecord* find_mutable(std::uint64_t id);

  sim::Simulator& sim_;
  std::vector<SpanRecord> spans_;  // span ids strictly increasing
  std::vector<FlowEdge> flows_;
  std::uint64_t next_id_ = 1;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t dropped_ = 0;
};

class CausalTracer;

/// Move-only RAII handle: closes its span on destruction. A default-
/// constructed TraceSpan is inert, so dæmons can instrument
/// unconditionally and only populate the span when tracing is enabled.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceBuffer* buf, fabric::TraceContext ctx)
      : buf_(buf), ctx_(ctx) {}
  TraceSpan(TraceSpan&& o) noexcept : buf_(o.buf_), ctx_(o.ctx_) {
    o.buf_ = nullptr;
    o.ctx_ = {};
  }
  TraceSpan& operator=(TraceSpan&& o) noexcept {
    if (this != &o) {
      end();
      buf_ = o.buf_;
      ctx_ = o.ctx_;
      o.buf_ = nullptr;
      o.ctx_ = {};
    }
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { end(); }

  /// The context to stamp on fabric operations this span causes.
  fabric::TraceContext context() const { return ctx_; }
  bool active() const { return buf_ != nullptr && ctx_.span != 0; }

  void end() {
    if (buf_ != nullptr) buf_->end_span(ctx_.span);
    buf_ = nullptr;
  }

 private:
  TraceBuffer* buf_ = nullptr;
  fabric::TraceContext ctx_{};
};

/// The tracing middleware + span factory. Passive on the fabric (it
/// never drops/delays); its observe() hook harvests the trace context
/// of LaunchChunk XFERs so the receiving NM can parent its chunk-write
/// span on the exact broadcast that carried the bytes.
class CausalTracer final : public fabric::Middleware {
 public:
  explicit CausalTracer(sim::Simulator& sim) : buffer_(sim) {}

  std::string_view name() const override { return "causal-tracer"; }
  void apply(const fabric::Envelope&, fabric::Action&) override {}
  void observe(const fabric::Envelope& e, const fabric::Action& a) override;

  // --- span factory -------------------------------------------------------
  /// Open a span inside `parent`'s trace (or the control trace when the
  /// parent is invalid).
  TraceSpan begin(SpanKind kind, int node, fabric::TraceContext parent,
                  std::int64_t a = 0, std::int64_t b = 0);
  /// begin() plus a cause→effect flow edge from the parent span. Use
  /// when the parent ran on a *different* node (command delivery,
  /// chunk broadcast) so the timeline draws the arrow.
  TraceSpan begin_flow(SpanKind kind, int node, fabric::TraceContext parent,
                       std::int64_t a = 0, std::int64_t b = 0);

  /// Lazily open the JobLaunch root span of (job, incarnation); returns
  /// its context. `mm_node` is recorded on first creation only.
  fabric::TraceContext job_root(int job, int inc, int mm_node);
  /// Close the JobLaunch root (job finished, was killed, or failed).
  void close_job(int job, int inc);

  /// Context of the broadcast that carried chunk `index` of `job`
  /// (invalid if no such XFER was observed yet).
  fabric::TraceContext chunk_cause(int job, int index) const;

  TraceBuffer& buffer() { return buffer_; }
  const TraceBuffer& buffer() const { return buffer_; }

 private:
  TraceBuffer buffer_;
  // (job << 32) | chunk-index → context of the carrying XFER. Lookup
  // only — iteration order never matters, so the hash map is safe for
  // determinism.
  std::unordered_map<std::uint64_t, fabric::TraceContext> chunk_ctx_;
  std::unordered_map<std::uint64_t, fabric::TraceContext> job_roots_;
};

// --- exporters ------------------------------------------------------------

/// Chrome/Perfetto trace-event JSON: one process per node (pid = node,
/// MM/standby tracks included), one thread lane per dæmon, "X" slices
/// for closed spans, "s"/"f" flow arrows along every edge whose both
/// ends closed. Open spans are skipped. Deterministic output.
std::string to_perfetto_json(const TraceBuffer& buf);

/// Paper-style decomposition of one trace's critical path: walk
/// backwards from the latest span end, always stepping to the latest
/// span that finished before the current instant, attributing each
/// segment to its span's kind and uncovered gaps to Idle.
struct LaunchCriticalPath {
  std::int64_t total_ns = 0;  // first span start → last span end
  std::array<std::int64_t, kSpanKindCount> per_kind_ns{};
  double overlap_factor = 0.0;  // sum of span durations / total
  int spans = 0;                // closed spans considered

  std::int64_t kind_ns(SpanKind k) const {
    return per_kind_ns[static_cast<std::size_t>(k)];
  }
};

LaunchCriticalPath analyze_launch(const TraceBuffer& buf,
                                  std::uint64_t trace);

/// Render one decomposition as human-readable lines ("  ft-bcast
/// 78.3% 83.21 ms" …), for the benches' stdout reports.
std::string format_critical_path(const LaunchCriticalPath& cp);

}  // namespace storm::telemetry
