// Cluster-wide telemetry: a registry of named counters, gauges and
// log2-bucketed histograms, all driven by *simulated* time, so two
// same-seed runs produce byte-identical metrics (ROADMAP "Metrics
// aggregation").
//
// The registry is deliberately header-only and depends only on
// `src/sim`, so every layer — bench harnesses included — can hold one
// without linking a new library. Hot paths should resolve their
// instruments once (`Counter& c = reg.counter("ft.chunks")`) and keep
// the reference: entries are node-based, so references stay valid for
// the registry's lifetime.
//
// Snapshots export two ways:
//   * `print(FILE*)` — a human-readable table for examples and
//     interactive runs;
//   * `to_json()` — the stable `storm.metrics.v1` schema consumed by
//     the bench harnesses' `--metrics <out.json>` flag and CI.
#pragma once

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace storm::telemetry {

/// Monotonic event count (messages delivered, chunks written, ...).
class Counter {
 public:
  void add(std::int64_t d = 1) { value_ += d; }
  std::int64_t value() const { return value_; }
  void merge(const Counter& o) { value_ += o.value_; }

 private:
  std::int64_t value_ = 0;
};

/// Point-in-time level (occupancy, queue depth). `set_max` keeps a
/// high-water mark instead of the last sample.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    set_ = true;
  }
  void set_max(double v) {
    if (!set_ || v > value_) set(v);
  }
  double value() const { return value_; }
  bool ever_set() const { return set_; }
  /// Merge semantics: the other registry is the *later* run, so its
  /// last sample wins (high-water gauges should re-merge via set_max
  /// by the caller if cross-run maxima are wanted).
  void merge(const Gauge& o) {
    if (o.set_) set(o.value_);
  }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Log2-bucketed latency/size histogram over non-negative int64
/// samples (typically nanoseconds of simulated time).
///
/// Bucket 0 holds v <= 0; bucket i (1 <= i <= 48) holds
/// [2^(i-1), 2^i); bucket 49 is the overflow bucket for v >= 2^48
/// (~3.3 simulated days in ns — far beyond any experiment).
class Histogram {
 public:
  static constexpr int kBuckets = 50;
  static constexpr int kOverflowBucket = kBuckets - 1;

  static constexpr int bucket_of(std::int64_t v) {
    if (v <= 0) return 0;
    const int w = std::bit_width(static_cast<std::uint64_t>(v));
    return w < kOverflowBucket ? w : kOverflowBucket;
  }
  /// Smallest value landing in bucket `i`.
  static constexpr std::int64_t bucket_lo(int i) {
    if (i <= 0) return 0;
    return std::int64_t{1} << (i - 1);
  }

  void record(std::int64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
  }
  void record(sim::SimTime t) { record(t.raw_ns()); }

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::int64_t bucket_count(int i) const { return buckets_[i]; }

  void merge(const Histogram& o) {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    if (o.count_ == 0) return;
    min_ = count_ ? std::min(min_, o.min_) : o.min_;
    max_ = count_ ? std::max(max_, o.max_) : o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
  }

 private:
  std::int64_t buckets_[kBuckets] = {};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// RAII span: records the simulated time between construction and
/// destruction into a histogram (pipeline-stage timing).
class Span {
 public:
  Span(sim::Simulator& sim, Histogram& h)
      : sim_(sim), hist_(h), start_(sim.now()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { hist_.record(sim_.now() - start_); }

 private:
  sim::Simulator& sim_;
  Histogram& hist_;
  sim::SimTime start_;
};

// Shared metric names (written by fabric MetricsAggregator, read by
// update_overhead_ratio and the bench exporters).
inline constexpr std::string_view kControlBytesCounter =
    "fabric.bytes.control";
inline constexpr std::string_view kPayloadBytesCounter =
    "fabric.bytes.payload";
inline constexpr std::string_view kOverheadRatioGauge =
    "fabric.overhead.ratio";

class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) { return find(counters_, name); }
  Gauge& gauge(std::string_view name) { return find(gauges_, name); }
  Histogram& histogram(std::string_view name) {
    return find(histograms_, name);
  }

  const Counter* find_counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
  }
  const Gauge* find_gauge(std::string_view name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
  }
  const Histogram* find_histogram(std::string_view name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // --- enumeration (name-sorted, deterministic) ---------------------------
  // The query layer's `metrics` table scans through these; iteration
  // order is the registry's map order (lexicographic by name).

  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& f) const {
    for (const auto& [k, v] : counters_) f(k, v);
  }
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& f) const {
    for (const auto& [k, v] : gauges_) f(k, v);
  }
  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& f)
      const {
    for (const auto& [k, v] : histograms_) f(k, v);
  }

  /// Fold another registry into this one (counters add, histograms
  /// add, gauges keep the other run's last sample). Used by the bench
  /// harnesses to aggregate the per-run registries of many Clusters.
  void merge(const MetricsRegistry& o) {
    for (const auto& [k, v] : o.counters_) counter(k).merge(v);
    for (const auto& [k, v] : o.gauges_) gauge(k).merge(v);
    for (const auto& [k, v] : o.histograms_) histogram(k).merge(v);
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  // --- export ------------------------------------------------------------

  /// Stable JSON snapshot (schema `storm.metrics.v1`): entries sorted
  /// by name, integers exact, doubles via %.10g — so two same-seed
  /// runs serialise byte-identically.
  std::string to_json() const {
    std::string out = "{\n  \"schema\": \"storm.metrics.v1\",\n";
    out += "  \"counters\": {";
    const char* sep = "";
    for (const auto& [k, v] : counters_) {
      out += sep;
      out += "\n    \"" + k + "\": " + std::to_string(v.value());
      sep = ",";
    }
    out += counters_.empty() ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    sep = "";
    char buf[64];
    for (const auto& [k, v] : gauges_) {
      out += sep;
      std::snprintf(buf, sizeof(buf), "%.10g", v.value());
      out += "\n    \"" + k + "\": " + buf;
      sep = ",";
    }
    out += gauges_.empty() ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    sep = "";
    for (const auto& [k, v] : histograms_) {
      out += sep;
      out += "\n    \"" + k + "\": {\"count\": " + std::to_string(v.count()) +
             ", \"sum\": " + std::to_string(v.sum()) +
             ", \"min\": " + std::to_string(v.min()) +
             ", \"max\": " + std::to_string(v.max()) + ", \"buckets\": [";
      const char* bsep = "";
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (v.bucket_count(i) == 0) continue;
        out += bsep;
        // Separate appends: chained operator+ trips GCC's -Wrestrict
        // false positive (PR105651) under -O3 in some TUs.
        out += "[";
        out += std::to_string(Histogram::bucket_lo(i));
        out += ", ";
        out += std::to_string(v.bucket_count(i));
        out += "]";
        bsep = ", ";
      }
      out += "]}";
      sep = ",";
    }
    out += histograms_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
  }

  /// Human-readable table (histogram times rendered in microseconds).
  void print(std::FILE* f = stdout) const {
    if (!counters_.empty()) {
      std::fprintf(f, "%-36s %14s\n", "counter", "value");
      for (const auto& [k, v] : counters_) {
        std::fprintf(f, "%-36s %14" PRId64 "\n", k.c_str(), v.value());
      }
    }
    if (!gauges_.empty()) {
      std::fprintf(f, "%-36s %14s\n", "gauge", "value");
      for (const auto& [k, v] : gauges_) {
        std::fprintf(f, "%-36s %14.4f\n", k.c_str(), v.value());
      }
    }
    if (!histograms_.empty()) {
      std::fprintf(f, "%-36s %10s %12s %12s %12s\n", "histogram (us)", "count",
                   "mean", "min", "max");
      for (const auto& [k, v] : histograms_) {
        std::fprintf(f, "%-36s %10" PRId64 " %12.1f %12.1f %12.1f\n",
                     k.c_str(), v.count(), v.mean() * 1e-3,
                     static_cast<double>(v.min()) * 1e-3,
                     static_cast<double>(v.max()) * 1e-3);
      }
    }
  }

 private:
  template <typename T>
  static T& find(std::map<std::string, T, std::less<>>& m,
                 std::string_view name) {
    const auto it = m.find(name);
    if (it != m.end()) return it->second;
    return m.emplace(std::string(name), T{}).first->second;
  }

  // node-based maps: references returned by counter()/gauge()/
  // histogram() stay valid across later insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Recompute `fabric.overhead.ratio` = control / (control + payload)
/// from the byte counters the fabric MetricsAggregator maintains.
/// Call after merging registries (ratios do not merge; bytes do).
inline void update_overhead_ratio(MetricsRegistry& reg) {
  const Counter* control = reg.find_counter(kControlBytesCounter);
  const Counter* payload = reg.find_counter(kPayloadBytesCounter);
  if (control == nullptr && payload == nullptr) return;
  const double c = control ? static_cast<double>(control->value()) : 0.0;
  const double p = payload ? static_cast<double>(payload->value()) : 0.0;
  reg.gauge(kOverheadRatioGauge).set(c + p > 0.0 ? c / (c + p) : 0.0);
}

/// Route every emitted STORM_TRACE line into `reg` as a
/// `trace.lines.<component>` counter, so trace volume itself is
/// observable. The registry must outlive the hook; detach with
/// `sim::Tracer::instance().set_line_observer({})`.
inline void count_trace_lines(MetricsRegistry& reg) {
  sim::Tracer::instance().set_line_observer([&reg](std::string_view comp) {
    reg.counter(std::string("trace.lines.") += comp).add(1);
  });
}

}  // namespace storm::telemetry
