// MetricsAggregator middleware: rolls every envelope crossing the
// MechanismFabric into the metrics registry — per-MsgClass
// delivery/drop/duplicate counters, issue→deliver latency histograms
// (strobe jitter, heartbeat delivery latency), COMPARE-AND-WRITE query
// and retry counts, and the control-plane byte accounting behind the
// paper's "~1% of network bandwidth" overhead claim.
//
// Purely passive: apply() never modifies the Action, so a chain of
// just this middleware perturbs neither simulated time nor the random
// stream, and same-seed runs export byte-identical snapshots.
#pragma once

#include <array>
#include <cstdint>

#include "fabric/fabric.hpp"
#include "telemetry/metrics.hpp"

namespace storm::telemetry {

class MetricsAggregator final : public fabric::Middleware {
 public:
  /// Instruments are created in `reg` lazily, on the first envelope of
  /// each message class. `reg` must outlive the aggregator.
  MetricsAggregator(sim::Simulator& sim, MetricsRegistry& reg)
      : sim_(sim), reg_(reg) {}

  std::string_view name() const override { return "metrics"; }
  void apply(const fabric::Envelope&, fabric::Action&) override {}
  void observe(const fabric::Envelope& e, const fabric::Action& a) override;

 private:
  /// Lazily-resolved instruments for one message class. The outcome
  /// counters partition the wire ops exactly:
  ///   wire_ops == delivered + multicasts + xfers + caw + dropped
  /// — the per-class reconciliation identity the query layer's
  /// msgclass-reconcile invariant asserts.
  struct ClassStats {
    Counter* wire_ops = nullptr;    // every wire op observed, pre-verdict
    Counter* delivered = nullptr;   // CommandDeliver envelopes not dropped
    Counter* multicasts = nullptr;  // CommandMulticast wire legs not dropped
    Counter* xfers = nullptr;       // XFER-AND-SIGNAL envelopes not dropped
    Counter* dropped = nullptr;     // any wire op dropped by the chain
    Counter* duplicated = nullptr;  // extra copies injected by the chain
    Counter* caw = nullptr;         // COMPARE-AND-WRITE queries that
                                    // reached the NIC (dropped ones only
                                    // count in `dropped`)
    Counter* caw_retries = nullptr; // consecutive identical queries
    Histogram* latency = nullptr;   // multicast issue -> per-node deliver

    // issue time of the in-flight multicast of this class, and the
    // key of the previous CAW query (retry detection).
    std::int64_t issue_ns = -1;
    std::int64_t last_caw_a = 0;
    std::int64_t last_caw_b = 0;
    bool caw_seen = false;
  };

  ClassStats& stats(fabric::MsgClass c);

  sim::Simulator& sim_;
  MetricsRegistry& reg_;
  std::array<ClassStats, fabric::kMsgClassCount> cls_{};
  std::array<bool, fabric::kMsgClassCount> init_{};

  Counter* control_bytes_ = nullptr;
  Counter* payload_bytes_ = nullptr;
  Counter* control_msgs_ = nullptr;
  Counter* local_ops_ = nullptr;
  Counter* notes_ = nullptr;
};

}  // namespace storm::telemetry
