#include "telemetry/tracing.hpp"

#include <algorithm>
#include <cstdio>

namespace storm::telemetry {

using fabric::Envelope;
using fabric::TraceContext;

// --- TraceBuffer ----------------------------------------------------------

std::uint64_t TraceBuffer::begin_span(SpanKind kind, int node,
                                      std::uint64_t trace,
                                      std::uint64_t parent, std::int64_t a,
                                      std::int64_t b) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  SpanRecord r;
  r.trace = trace;
  r.span = next_id_++;
  r.parent = parent;
  r.t_start_ns = sim_.now().raw_ns();
  r.t_end_ns = -1;
  r.node = node;
  r.kind = static_cast<std::uint8_t>(kind);
  r.a = a;
  r.b = b;
  spans_.push_back(r);
  return r.span;
}

SpanRecord* TraceBuffer::find_mutable(std::uint64_t id) {
  // Span ids are strictly increasing in insertion order.
  auto it = std::lower_bound(
      spans_.begin(), spans_.end(), id,
      [](const SpanRecord& s, std::uint64_t v) { return s.span < v; });
  if (it == spans_.end() || it->span != id) return nullptr;
  return &*it;
}

const SpanRecord* TraceBuffer::find(std::uint64_t id) const {
  return const_cast<TraceBuffer*>(this)->find_mutable(id);
}

void TraceBuffer::end_span(std::uint64_t id) {
  if (id == 0) return;
  SpanRecord* s = find_mutable(id);
  if (s == nullptr || !s->open()) return;
  s->t_end_ns = sim_.now().raw_ns();
}

void TraceBuffer::flow(std::uint64_t from, std::uint64_t to) {
  if (from == 0 || to == 0) return;
  flows_.push_back(FlowEdge{from, to});
}

std::vector<std::uint8_t> TraceBuffer::bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(16 + spans_.size() * kSpanRecordBytes + flows_.size() * 16);
  auto put32 = [&out](std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  };
  auto put64 = [&](std::uint64_t v) {
    put32(static_cast<std::uint32_t>(v));
    put32(static_cast<std::uint32_t>(v >> 32));
  };
  put64(spans_.size());
  put64(flows_.size());
  for (const auto& s : spans_) {
    put64(s.trace);
    put64(s.span);
    put64(s.parent);
    put64(static_cast<std::uint64_t>(s.t_start_ns));
    put64(static_cast<std::uint64_t>(s.t_end_ns));
    put32(static_cast<std::uint32_t>(s.node));
    out.push_back(s.kind);
    put64(static_cast<std::uint64_t>(s.a));
    put64(static_cast<std::uint64_t>(s.b));
  }
  for (const auto& f : flows_) {
    put64(f.from);
    put64(f.to);
  }
  return out;
}

// --- CausalTracer ---------------------------------------------------------

void CausalTracer::observe(const Envelope& e, const fabric::Action& a) {
  if (e.op != fabric::OpKind::Xfer || e.cls() != fabric::MsgClass::LaunchChunk)
    return;
  if (!e.ctx.valid() || a.drop) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
           e.msg.u.chunk.job))
       << 32) |
      static_cast<std::uint32_t>(e.msg.u.chunk.index);
  chunk_ctx_[key] = e.ctx;
}

TraceSpan CausalTracer::begin(SpanKind kind, int node, TraceContext parent,
                              std::int64_t a, std::int64_t b) {
  const std::uint64_t trace =
      parent.valid() ? parent.trace : kControlTrace;
  const std::uint64_t id =
      buffer_.begin_span(kind, node, trace, parent.span, a, b);
  return TraceSpan(&buffer_, TraceContext{trace, id});
}

TraceSpan CausalTracer::begin_flow(SpanKind kind, int node,
                                   TraceContext parent, std::int64_t a,
                                   std::int64_t b) {
  TraceSpan s = begin(kind, node, parent, a, b);
  if (parent.valid()) buffer_.flow(parent.span, s.context().span);
  return s;
}

TraceContext CausalTracer::job_root(int job, int inc, int mm_node) {
  const std::uint64_t trace = job_trace_id(job, inc);
  auto it = job_roots_.find(trace);
  if (it != job_roots_.end()) return it->second;
  const std::uint64_t id = buffer_.begin_span(SpanKind::JobLaunch, mm_node,
                                              trace, 0, job, inc);
  const TraceContext ctx{trace, id};
  job_roots_.emplace(trace, ctx);
  return ctx;
}

void CausalTracer::close_job(int job, int inc) {
  const std::uint64_t trace = job_trace_id(job, inc);
  auto it = job_roots_.find(trace);
  if (it == job_roots_.end()) return;
  buffer_.end_span(it->second.span);
}

TraceContext CausalTracer::chunk_cause(int job, int index) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(job)) << 32) |
      static_cast<std::uint32_t>(index);
  auto it = chunk_ctx_.find(key);
  return it == chunk_ctx_.end() ? TraceContext{} : it->second;
}

// --- Perfetto export ------------------------------------------------------

namespace {

/// Stable tid per lane within each node's process.
int lane_tid(SpanKind k) {
  const std::string_view l = lane(k);
  if (l == "mm") return 0;
  if (l == "nm") return 1;
  if (l == "pl") return 2;
  if (l == "ft") return 3;
  if (l == "jobs") return 4;
  return 5;
}

/// Perfetto pids must be non-negative; node -1 (cluster-wide spans,
/// e.g. MM failover) renders as a dedicated "cluster" process.
int span_pid(const SpanRecord& s) { return s.node < 0 ? 1000000 : s.node; }

void append_event_prefix(std::string& out, const char* ph, int pid, int tid,
                         std::int64_t ts_ns) {
  char buf[128];
  // ts is microseconds; 3 decimals represent nanoseconds exactly.
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%lld.%03lld",
                ph, pid, tid, static_cast<long long>(ts_ns / 1000),
                static_cast<long long>(ts_ns % 1000));
  out.append(buf);
}

}  // namespace

std::string to_perfetto_json(const TraceBuffer& buf) {
  std::string out;
  out.reserve(256 + buf.spans().size() * 160 + buf.flows().size() * 220);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");

  // Process / thread metadata: one process per node seen, one named
  // thread per lane used in that process. Collected sorted for
  // deterministic output.
  std::vector<std::pair<int, int>> lanes;  // (pid, tid)
  for (const auto& s : buf.spans()) {
    lanes.emplace_back(span_pid(s), lane_tid(s.span_kind()));
  }
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());

  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out.append(",\n");
    first = false;
  };

  int last_pid = -1;
  for (const auto& [pid, tid] : lanes) {
    char buf2[160];
    if (pid != last_pid) {
      sep();
      if (pid >= 1000000) {
        std::snprintf(buf2, sizeof(buf2),
                      "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                      "\"args\":{\"name\":\"cluster\"}}",
                      pid);
      } else {
        std::snprintf(buf2, sizeof(buf2),
                      "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                      "\"args\":{\"name\":\"node %d\"}}",
                      pid, pid);
      }
      out.append(buf2);
      last_pid = pid;
    }
    static constexpr const char* kLaneNames[] = {"mm", "nm", "pl",
                                                 "ft", "jobs", "idle"};
    sep();
    std::snprintf(buf2, sizeof(buf2),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  pid, tid, kLaneNames[tid]);
    out.append(buf2);
  }

  // Closed spans as complete ("X") slices. Spans still open when the
  // run drained (parked dæmon loops) are skipped.
  for (const auto& s : buf.spans()) {
    if (s.open()) continue;
    sep();
    append_event_prefix(out, "X", span_pid(s), lane_tid(s.span_kind()),
                        s.t_start_ns);
    char buf2[224];
    const std::int64_t dur = s.t_end_ns - s.t_start_ns;
    const std::string_view nm = to_string(s.span_kind());
    std::snprintf(buf2, sizeof(buf2),
                  ",\"dur\":%lld.%03lld,\"name\":\"%.*s\",\"args\":{"
                  "\"trace\":%llu,\"span\":%llu,\"parent\":%llu,"
                  "\"a\":%lld,\"b\":%lld}}",
                  static_cast<long long>(dur / 1000),
                  static_cast<long long>(dur % 1000),
                  static_cast<int>(nm.size()), nm.data(),
                  static_cast<unsigned long long>(s.trace),
                  static_cast<unsigned long long>(s.span),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<long long>(s.a), static_cast<long long>(s.b));
    out.append(buf2);
  }

  // Flow arrows between closed spans: "s" inside the source slice,
  // "f" (binding point "e") inside the destination slice.
  std::uint64_t flow_id = 0;
  for (const auto& f : buf.flows()) {
    ++flow_id;
    const SpanRecord* from = buf.find(f.from);
    const SpanRecord* to = buf.find(f.to);
    if (from == nullptr || to == nullptr || from->open() || to->open())
      continue;
    char buf2[96];
    sep();
    append_event_prefix(out, "s", span_pid(*from),
                        lane_tid(from->span_kind()), from->t_start_ns);
    std::snprintf(buf2, sizeof(buf2), ",\"id\":%llu,\"name\":\"cause\"}",
                  static_cast<unsigned long long>(flow_id));
    out.append(buf2);
    sep();
    append_event_prefix(out, "f", span_pid(*to), lane_tid(to->span_kind()),
                        to->t_start_ns);
    std::snprintf(buf2, sizeof(buf2),
                  ",\"id\":%llu,\"bp\":\"e\",\"name\":\"cause\"}",
                  static_cast<unsigned long long>(flow_id));
    out.append(buf2);
  }

  out.append("\n]}\n");
  return out;
}

// --- critical-path analyzer -----------------------------------------------

LaunchCriticalPath analyze_launch(const TraceBuffer& buf,
                                  std::uint64_t trace) {
  // Closed, non-root spans of this trace, in deterministic order.
  std::vector<const SpanRecord*> spans;
  for (const auto& s : buf.spans()) {
    if (s.trace != trace || s.open()) continue;
    if (s.span_kind() == SpanKind::JobLaunch) continue;
    spans.push_back(&s);
  }
  LaunchCriticalPath cp;
  if (spans.empty()) return cp;

  std::int64_t lo = spans[0]->t_start_ns;
  std::int64_t hi = spans[0]->t_end_ns;
  std::int64_t busy = 0;
  for (const auto* s : spans) {
    lo = std::min(lo, s->t_start_ns);
    hi = std::max(hi, s->t_end_ns);
    busy += s->t_end_ns - s->t_start_ns;
  }
  cp.total_ns = hi - lo;
  cp.spans = static_cast<int>(spans.size());
  cp.overlap_factor =
      cp.total_ns > 0 ? static_cast<double>(busy) /
                            static_cast<double>(cp.total_ns)
                      : 0.0;

  // Greedy backward walk: from the latest end, repeatedly step to the
  // latest-finishing span at or before the cursor, attributing its
  // duration to its kind and any uncovered gap to Idle.
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->t_end_ns != b->t_end_ns) return a->t_end_ns < b->t_end_ns;
              if (a->t_start_ns != b->t_start_ns)
                return a->t_start_ns < b->t_start_ns;
              return a->span < b->span;
            });
  std::int64_t t = hi;
  auto idle = [&cp](std::int64_t ns) {
    cp.per_kind_ns[static_cast<std::size_t>(SpanKind::Idle)] += ns;
  };
  // Index of the last span with t_end <= t (spans sorted by t_end).
  auto last_at_or_before = [&spans](std::int64_t cut) -> std::ptrdiff_t {
    auto it = std::upper_bound(
        spans.begin(), spans.end(), cut,
        [](std::int64_t v, const SpanRecord* s) { return v < s->t_end_ns; });
    return it - spans.begin() - 1;
  };
  while (t > lo) {
    const std::ptrdiff_t i = last_at_or_before(t);
    if (i < 0) {
      idle(t - lo);
      break;
    }
    const SpanRecord* s = spans[static_cast<std::size_t>(i)];
    if (s->t_end_ns < t) idle(t - s->t_end_ns);
    cp.per_kind_ns[s->kind] += s->t_end_ns - s->t_start_ns;
    t = s->t_start_ns;
  }
  return cp;
}

std::string format_critical_path(const LaunchCriticalPath& cp) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  critical path %.3f ms over %d spans (overlap x%.2f)\n",
                static_cast<double>(cp.total_ns) / 1e6, cp.spans,
                cp.overlap_factor);
  out.append(buf);
  // Kinds sorted by descending share for readability; ties by enum
  // order (stable sort over the fixed array).
  std::vector<std::pair<std::int64_t, int>> rows;
  for (int k = 0; k < kSpanKindCount; ++k) {
    if (cp.per_kind_ns[static_cast<std::size_t>(k)] > 0) {
      rows.emplace_back(cp.per_kind_ns[static_cast<std::size_t>(k)], k);
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [ns, k] : rows) {
    const std::string_view nm = to_string(static_cast<SpanKind>(k));
    const double pct = cp.total_ns > 0
                           ? 100.0 * static_cast<double>(ns) /
                                 static_cast<double>(cp.total_ns)
                           : 0.0;
    std::snprintf(buf, sizeof(buf), "    %-16.*s %6.1f%%  %10.3f ms\n",
                  static_cast<int>(nm.size()), nm.data(), pct,
                  static_cast<double>(ns) / 1e6);
    out.append(buf);
  }
  return out;
}

}  // namespace storm::telemetry
