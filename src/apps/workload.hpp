// Synthetic workload generation and scheduling metrics.
//
// The paper argues STORM is "a suitable vessel for in vivo
// experimentation with alternate scheduling algorithms" (Section 5.2);
// this module supplies the experiment harness: reproducible streams of
// job arrivals (Poisson inter-arrivals, log-uniform widths, bounded
// Pareto runtimes — the standard supercomputer-workload shape) and the
// metrics the job-scheduling literature reports (utilisation, mean and
// bounded slowdown, turnaround).
#pragma once

#include <vector>

#include "sim/random.hpp"
#include "storm/job.hpp"

namespace storm::apps {

using core::Cluster;
using core::JobId;
using core::JobSpec;

struct WorkloadParams {
  int jobs = 20;
  sim::SimTime mean_interarrival = sim::SimTime::millis(500);
  /// PE widths are 2^U(log2(min), log2(max)) — wide spread, power of
  /// two heavy, like real parallel workloads.
  int min_pes = 1;
  int max_pes = 64;
  /// Runtimes: bounded Pareto (heavy tail, alpha ~ 1.5).
  sim::SimTime min_runtime = sim::SimTime::millis(100);
  sim::SimTime max_runtime = sim::SimTime::sec(10);
  double runtime_alpha = 1.5;
  /// User estimates are this factor above true runtime (systematic
  /// over-estimation, as in real traces).
  double estimate_factor = 1.5;
  sim::Bytes binary_size = 4 * 1024 * 1024;
  std::uint64_t seed = 0xBEEF;
};

struct GeneratedJob {
  sim::SimTime arrival;
  JobSpec spec;
  sim::SimTime true_runtime;
};

/// Deterministically expand the parameters into a job stream.
std::vector<GeneratedJob> generate_workload(const WorkloadParams& params);

/// Submit every job of the trace at its arrival time and run the
/// cluster until all complete. Returns the submitted ids in trace
/// order, or empty on timeout.
std::vector<JobId> run_workload(Cluster& cluster,
                                const std::vector<GeneratedJob>& trace,
                                sim::SimTime limit = sim::SimTime::sec(24 * 3600));

struct WorkloadMetrics {
  double makespan_s = 0;
  double utilization = 0;        // busy PE-seconds / (PEs * makespan)
  double mean_turnaround_s = 0;
  double mean_slowdown = 0;      // turnaround / true runtime
  double mean_bounded_slowdown = 0;  // 10 s floor on the denominator
  double max_wait_s = 0;
};

WorkloadMetrics compute_metrics(const Cluster& cluster,
                                const std::vector<GeneratedJob>& trace,
                                const std::vector<JobId>& ids);

}  // namespace storm::apps
