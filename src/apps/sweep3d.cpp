#include "apps/sweep3d.hpp"

#include <cmath>

namespace storm::apps {

using core::AppContext;
using core::AppProgram;
using sim::SimTime;
using sim::Task;

std::pair<int, int> sweep3d_grid(int npes) {
  // Most square factorisation px * py == npes with px <= py.
  int px = static_cast<int>(std::sqrt(static_cast<double>(npes)));
  while (px > 1 && npes % px != 0) --px;
  return {px, npes / px};
}

int sweep3d_iterations(const Sweep3DParams& p) {
  const double per_iter =
      p.octant_work.to_seconds() * static_cast<double>(p.octants);
  const int iters =
      static_cast<int>(p.target_runtime.to_seconds() / per_iter + 0.5);
  return iters > 0 ? iters : 1;
}

namespace {

// One PE's body: `iters` timesteps of `octants` sweeps, with an
// upstream-recv / compute / downstream-send dependency per sweep. The
// four sweep directions of the 2D decomposition alternate, so over a
// timestep each PE talks to all of its grid neighbours.
Task<> sweep_pe(AppContext& ctx, Sweep3DParams p) {
  const auto [px, py] = sweep3d_grid(ctx.npes());
  const int ix = ctx.rank() % px;
  const int iy = ctx.rank() / px;
  const int iters = sweep3d_iterations(p);

  // Direction table: (dx, dy) per octant (the 8 octants of the
  // transport equation collapse to 4 distinct 2D wavefront directions,
  // each visited twice per timestep).
  static constexpr int kDir[4][2] = {{1, 1}, {-1, 1}, {1, -1}, {-1, -1}};

  for (int it = 0; it < iters; ++it) {
    for (int oct = 0; oct < p.octants; ++oct) {
      const int dx = kDir[oct % 4][0];
      const int dy = kDir[oct % 4][1];

      // Sweep the local block. In the real code the k-planes of an
      // octant pipeline across the PE grid, keeping every PE busy;
      // modelling that fill at plane granularity would multiply the
      // event count by nz, so the model runs the (fully pipelined)
      // octant as one burst and applies the neighbour dependency at
      // octant boundaries: compute, push boundary angular fluxes
      // downstream, then block on the upstream fluxes needed before
      // the next octant. Blocking recv() is what makes progress
      // require the whole gang to be coscheduled.
      SimTime work = p.octant_work;
      if (p.work_jitter > 0) {
        work = work * (1.0 + p.work_jitter * (2.0 * ctx.rng().uniform01() - 1.0));
      }
      co_await ctx.compute(work);

      const int dn_x = ix + dx;
      const int dn_y = iy + dy;
      if (dn_x >= 0 && dn_x < px) {
        co_await ctx.send(iy * px + dn_x, p.boundary_bytes);
      }
      if (dn_y >= 0 && dn_y < py) {
        co_await ctx.send(dn_y * px + ix, p.boundary_bytes);
      }

      const int up_x = ix - dx;
      const int up_y = iy - dy;
      if (up_x >= 0 && up_x < px) co_await ctx.recv(iy * px + up_x);
      if (up_y >= 0 && up_y < py) co_await ctx.recv(up_y * px + ix);
    }
  }
}

}  // namespace

AppProgram sweep3d(Sweep3DParams params) {
  return [params](AppContext& ctx) -> Task<> {
    co_await sweep_pe(ctx, params);
  };
}

}  // namespace storm::apps
