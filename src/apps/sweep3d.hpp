// SWEEP3D: the ASCI deterministic particle-transport wavefront code
// the paper uses for its gang-scheduling experiments (Section 3.2).
//
// What the experiments need from the application — and what this model
// reproduces — is its scheduling-relevant structure: a long sequence
// of CPU-bound sweep phases punctuated by blocking boundary exchanges
// with the 2D-grid neighbours, so that progress requires the whole
// gang to be coscheduled. Following the wavefront performance model of
// Hoisie et al. [20], sweeps are modelled at octant granularity
// (compute block + neighbour exchange) rather than per-k-plane
// pipelining; this preserves the dependency structure and the
// communication:computation ratio while keeping the event count
// tractable at 300 us quanta. The paper's footnote 4 (SWEEP3D's poor
// memory locality means co-resident processes barely pollute each
// other's working sets) is reflected in the small per-switch cache
// penalty of the node model.
#pragma once

#include "storm/job.hpp"

namespace storm::apps {

struct Sweep3DParams {
  /// Target solo runtime per PE; iteration count is derived.
  sim::SimTime target_runtime = sim::SimTime::sec(49);
  /// CPU work of one octant sweep over the local block.
  sim::SimTime octant_work = sim::SimTime::millis(6.0);
  int octants = 8;
  /// Boundary data exchanged with each downstream neighbour per octant.
  sim::Bytes boundary_bytes = 32 * 1024;
  /// +- relative jitter on per-octant work (load imbalance).
  double work_jitter = 0.02;
};

/// Build the SWEEP3D program for a given PE count (the 2D process
/// grid is chosen as the most square factorisation of npes).
core::AppProgram sweep3d(Sweep3DParams params = {});

/// The (px, py) grid used for `npes` PEs.
std::pair<int, int> sweep3d_grid(int npes);

/// Iterations run for the given parameters.
int sweep3d_iterations(const Sweep3DParams& params);

}  // namespace storm::apps
