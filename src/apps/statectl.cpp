// statectl — the operator CLI over `storm.state.v1` cluster-state
// snapshots (DESIGN.md §3.5, EXPERIMENTS.md "Operating a run").
//
// Any bench harness can export its final cluster state with
// `--state <out.json|->`; statectl renders the canned squeue/sinfo
// style views over such a snapshot, or replays the full invariant
// registry against it:
//
//   fig03_launch_loaded --fast --state state.json
//   statectl nodes    --state state.json
//   statectl queue    --state state.json
//   statectl spans    --job 3 --state state.json
//   statectl metrics  --prefix mm. --top 10 --state state.json
//   statectl top      --state state.json   # per-window rates + trends
//   statectl watch    --state state.json   # time-major window rows
//   statectl check    --state state.json        # exit 1 on violation
//   fig02_launch_unloaded --fast --state - | statectl summary --state -
//
// With `--state -` statectl reads stdin and locates the snapshot
// inside mixed output (benches print their tables first and the
// snapshot last), so piping a harness straight in Just Works.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/common.hpp"
#include "query/invariants.hpp"
#include "query/snapshot.hpp"
#include "query/views.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <view>|check|views [--job <J>] [--top <K>]\n"
               "       [--windows <N>] [--prefix <P>] --state <file|->\n"
               "views:",
               argv0);
  for (const auto& v : storm::query::view_names()) {
    std::fprintf(stderr, " %s", v.c_str());
  }
  std::fprintf(stderr,
               "\n  check          run the invariant registry (exit 1 on "
               "violation)\n"
               "  views          list the available views\n"
               "  --job <J>      spans view: only job J's incarnations\n"
               "  --top <K>      top/metrics views: show K entries "
               "(default 12)\n"
               "  --windows <N>  top/watch views: trailing N windows "
               "(default 20)\n"
               "  --prefix <P>   top/watch/metrics: only metrics named P*\n"
               "  --state <f|->  snapshot file, or '-' for stdin (a bench's\n"
               "                 piped output is located automatically)\n");
  return 2;
}

bool read_stream(std::FILE* f, std::string& out) {
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  return std::ferror(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace storm;

  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "views") {
    for (const auto& v : query::view_names()) std::printf("%s\n", v.c_str());
    std::printf("check\n");
    return 0;
  }
  if (cmd == "--help" || cmd == "-h") return usage(argv[0]);

  query::ViewOptions opt;
  for (int i = 2; i < argc; ++i) {
    const auto int_arg = [&](const char* flag, int& dst) {
      if (std::strcmp(argv[i], flag) != 0) return true;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        return false;
      }
      dst = std::atoi(argv[++i]);
      return true;
    };
    if (!int_arg("--job", opt.job) || !int_arg("--top", opt.top) ||
        !int_arg("--windows", opt.windows)) {
      return 2;
    }
    if (std::strcmp(argv[i], "--prefix") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --prefix requires a value\n", argv[0]);
        return 2;
      }
      opt.prefix = argv[++i];
    }
  }

  // Reuses the bench flag parser: a trailing `--state` with no path is
  // the same usage error a harness gives (exit 2).
  const char* path = bench::parse_out_path(argc, argv, "--state");
  if (path == nullptr) {
    std::fprintf(stderr, "%s: --state <file|-> is required\n", argv[0]);
    return usage(argv[0]);
  }

  std::string text;
  if (std::strcmp(path, "-") == 0) {
    if (!read_stream(stdin, text)) {
      std::fprintf(stderr, "%s: error reading stdin\n", argv[0]);
      return 1;
    }
  } else {
    std::FILE* f = std::fopen(path, "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s\n", argv[0], path);
      return 1;
    }
    const bool ok = read_stream(f, text);
    std::fclose(f);
    if (!ok) {
      std::fprintf(stderr, "%s: error reading %s\n", argv[0], path);
      return 1;
    }
  }

  const std::string json(query::find_state_json(text));
  if (json.empty()) {
    std::fprintf(stderr, "%s: no %.*s snapshot found in %s\n", argv[0],
                 static_cast<int>(query::kStateSchema.size()),
                 query::kStateSchema.data(),
                 std::strcmp(path, "-") == 0 ? "stdin" : path);
    return 1;
  }

  query::StateSnapshot snap;
  std::string err;
  if (!query::from_json(json, snap, &err)) {
    std::fprintf(stderr, "%s: bad snapshot: %s\n", argv[0], err.c_str());
    return 1;
  }
  const query::TableSet tables = snap.tables();

  if (cmd == "check") {
    const query::InvariantReport report = query::check_invariants(tables);
    const std::string summary = report.summary();
    std::printf("%s%s", summary.c_str(),
                summary.ends_with('\n') ? "" : "\n");
    return report.ok() ? 0 : 1;
  }

  const std::string out = query::render_view(cmd, tables, opt, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
    return usage(argv[0]);
  }
  std::printf("%s", out.c_str());
  return 0;
}
