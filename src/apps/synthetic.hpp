// The paper's "synthetic CPU-intensive job": pure computation, no
// communication. Used by the time-quantum (Figure 4) and node-
// scalability (Figure 5) experiments alongside SWEEP3D.
#pragma once

#include "storm/job.hpp"

namespace storm::apps {

/// A program whose every PE computes for `total_work` CPU time and
/// exits. `granule` bounds the length of individual compute bursts
/// (the default single burst is exact and cheapest; smaller granules
/// add scheduler interaction points).
core::AppProgram synthetic_computation(sim::SimTime total_work,
                                       sim::SimTime granule = sim::SimTime::zero());

/// A CPU hog: spins for `duration` of wall-clock-ish work, modelling
/// the paper's CPU-contention loader as a submit-able job.
core::AppProgram cpu_spinner(sim::SimTime duration);

}  // namespace storm::apps
