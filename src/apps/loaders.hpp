// The paper's load-generator programs (Section 3.1.2): a tight
// spin-loop that creates CPU contention and a pairwise message
// ping-pong that creates network contention. Both are also available
// non-intrusively through Cluster::start_cpu_load() /
// start_network_load(); these job versions let examples and tests run
// the loaders as ordinary STORM jobs.
#pragma once

#include "storm/job.hpp"

namespace storm::apps {

/// Pairs of ranks (2k, 2k+1) exchange `message_bytes` ping-pongs for a
/// fixed number of `rounds` (fixed so both ends of a pair agree on
/// when to stop). An unpaired last rank idles briefly and exits.
core::AppProgram network_pingpong(int rounds,
                                  sim::Bytes message_bytes = 64 * 1024);

}  // namespace storm::apps
