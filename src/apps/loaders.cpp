#include "apps/loaders.hpp"

namespace storm::apps {

using core::AppContext;
using core::AppProgram;
using sim::Task;

AppProgram network_pingpong(int rounds, sim::Bytes message_bytes) {
  return [rounds, message_bytes](AppContext& ctx) -> Task<> {
    const int peer = ctx.rank() ^ 1;
    if (peer >= ctx.npes()) co_return;  // unpaired last rank
    for (int r = 0; r < rounds; ++r) {
      if (ctx.rank() % 2 == 0) {
        co_await ctx.send(peer, message_bytes);
        co_await ctx.recv(peer);
      } else {
        co_await ctx.recv(peer);
        co_await ctx.send(peer, message_bytes);
      }
    }
  };
}

}  // namespace storm::apps
