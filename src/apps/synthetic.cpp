#include "apps/synthetic.hpp"

namespace storm::apps {

using sim::SimTime;
using sim::Task;

core::AppProgram synthetic_computation(SimTime total_work, SimTime granule) {
  return [total_work, granule](core::AppContext& ctx) -> Task<> {
    if (granule <= SimTime::zero()) {
      co_await ctx.compute(total_work);
      co_return;
    }
    SimTime left = total_work;
    while (left > SimTime::zero()) {
      const SimTime burst = left < granule ? left : granule;
      co_await ctx.compute(burst);
      left -= burst;
    }
  };
}

core::AppProgram cpu_spinner(SimTime duration) {
  return synthetic_computation(duration, SimTime::ms(100));
}

}  // namespace storm::apps
