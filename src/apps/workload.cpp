#include "apps/workload.hpp"

#include <algorithm>
#include <cmath>

#include "apps/synthetic.hpp"
#include "storm/cluster.hpp"
#include "storm/machine_manager.hpp"

namespace storm::apps {

using core::Cluster;
using core::Job;
using core::JobId;
using core::kInvalidJob;

using sim::SimTime;

std::vector<GeneratedJob> generate_workload(const WorkloadParams& p) {
  sim::Rng rng(p.seed);
  std::vector<GeneratedJob> out;
  out.reserve(p.jobs);
  SimTime arrival = SimTime::zero();
  for (int i = 0; i < p.jobs; ++i) {
    arrival += SimTime::seconds(
        rng.exponential(p.mean_interarrival.to_seconds()));

    const double lg_min = std::log2(static_cast<double>(p.min_pes));
    const double lg_max = std::log2(static_cast<double>(p.max_pes));
    const int pes = std::max(
        p.min_pes,
        std::min(p.max_pes, static_cast<int>(
                                std::round(std::exp2(
                                    rng.uniform(lg_min, lg_max))))));

    // Bounded Pareto runtime.
    double runtime =
        rng.pareto(p.min_runtime.to_seconds(), p.runtime_alpha);
    runtime = std::min(runtime, p.max_runtime.to_seconds());
    const SimTime true_rt = SimTime::seconds(runtime);

    GeneratedJob job;
    job.arrival = arrival;
    job.true_runtime = true_rt;
    job.spec.name = "wl-" + std::to_string(i);
    job.spec.binary_size = p.binary_size;
    job.spec.npes = pes;
    job.spec.program = apps::synthetic_computation(true_rt);
    job.spec.estimated_runtime = true_rt * p.estimate_factor;
    out.push_back(std::move(job));
  }
  return out;
}

std::vector<JobId> run_workload(Cluster& cluster,
                                const std::vector<GeneratedJob>& trace,
                                SimTime limit) {
  std::vector<JobId> ids(trace.size(), kInvalidJob);
  auto& sim = cluster.sim();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.schedule_at(trace[i].arrival, [&cluster, &ids, &trace, i] {
      ids[i] = cluster.submit(trace[i].spec);
    });
  }
  // Submissions happen lazily; completion requires every scheduled
  // submission to have fired and every job to be done.
  while (true) {
    if (sim.now() > limit) return {};
    const bool all_submitted =
        std::all_of(ids.begin(), ids.end(),
                    [](JobId id) { return id != kInvalidJob; });
    if (all_submitted && cluster.mm().all_done()) break;
    if (!sim.step()) return {};
  }
  return ids;
}

WorkloadMetrics compute_metrics(const Cluster& cluster,
                                const std::vector<GeneratedJob>& trace,
                                const std::vector<JobId>& ids) {
  WorkloadMetrics m;
  if (ids.empty()) return m;
  SimTime first_arrival = SimTime::max();
  SimTime last_finish = SimTime::zero();
  double busy_pe_seconds = 0;
  double turn_sum = 0, slow_sum = 0, bslow_sum = 0;
  constexpr double kBound = 10.0;  // bounded-slowdown floor (seconds)

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Job& j = cluster.job(ids[i]);
    const auto& t = j.times();
    first_arrival = std::min(first_arrival, t.submit);
    last_finish = std::max(last_finish, t.finished);
    const double rt = trace[i].true_runtime.to_seconds();
    const double turnaround = t.turnaround().to_seconds();
    busy_pe_seconds += rt * j.spec().npes;
    turn_sum += turnaround;
    slow_sum += turnaround / rt;
    bslow_sum += std::max(1.0, turnaround / std::max(rt, kBound));
    m.max_wait_s = std::max(
        m.max_wait_s, (t.transfer_start - t.submit).to_seconds());
  }

  const double n = static_cast<double>(ids.size());
  m.makespan_s = (last_finish - first_arrival).to_seconds();
  const auto& cfg = cluster.config();
  const double total_pes =
      static_cast<double>(cfg.nodes) * cfg.app_cpus_per_node;
  m.utilization =
      m.makespan_s > 0 ? busy_pe_seconds / (total_pes * m.makespan_s) : 0;
  m.mean_turnaround_s = turn_sum / n;
  m.mean_slowdown = slow_sum / n;
  m.mean_bounded_slowdown = bslow_sum / n;
  return m;
}

}  // namespace storm::apps
